// Failure-injection and boundary-condition tests: how the library behaves
// under misuse, degenerate inputs, and adversarially unhelpful conditions.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "attack/sparse_query.hpp"
#include "attack/sparse_transfer.hpp"
#include "baselines/timi.hpp"
#include "baselines/vanilla.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "fixtures.hpp"
#include "metrics/metrics.hpp"
#include "nn/conv3d.hpp"
#include "nn/linear.hpp"
#include "retrieval/index.hpp"
#include "serve/admission.hpp"
#include "serve/async_handle.hpp"
#include "serve/clock.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"

namespace duo {
namespace {

using duo::testing::TinyWorld;

attack::Perturbation noisy_support(const video::Video& v, std::uint64_t seed) {
  Rng rng(seed);
  attack::Perturbation p = baselines::random_support(v.geometry(), 150, 3, rng);
  Tensor noise =
      Tensor::uniform(v.geometry().tensor_shape(), -10.0f, 10.0f, rng);
  p.magnitude() = noise * p.pixel_mask() * p.frame_mask();
  return p;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " diverges at element " << i;
  }
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(FailureModes, ConvRejectsTooSmallInput) {
  Rng rng(1);
  nn::Conv3dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = {3, 3, 3};
  spec.stride = {1, 1, 1};
  spec.padding = {0, 0, 0};
  nn::Conv3d layer(spec, rng);
  // 2×2×2 spatial extent cannot fit a 3×3×3 kernel without padding.
  EXPECT_THROW(layer.forward(Tensor({1, 2, 2, 2})), std::logic_error);
}

TEST(FailureModes, BackwardBeforeForwardThrows) {
  Rng rng(2);
  nn::Linear layer(3, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({2})), std::logic_error);
}

TEST(FailureModes, MismatchedGradShapeThrows) {
  Rng rng(3);
  nn::Linear layer(3, 2, rng);
  (void)layer.forward(Tensor({3}));
  EXPECT_THROW(layer.backward(Tensor({5})), std::logic_error);
}

TEST(FailureModes, EmptyGalleryQueryReturnsEmpty) {
  retrieval::DataNode node(4);
  const auto result = node.query(Tensor({4}), 10);
  EXPECT_TRUE(result.empty());
}

TEST(FailureModes, AttackOnIdenticalSourceAndTargetIsStable) {
  // v == v_t: the targeted objective starts satisfied. The attack must not
  // crash and must return a valid (possibly unchanged) video.
  auto& w = TinyWorld::mutable_instance();
  attack::DuoConfig cfg;
  cfg.transfer.k = 100;
  cfg.transfer.n = 2;
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.query.iter_numQ = 10;
  cfg.iter_numH = 1;
  cfg.m = 8;
  attack::DuoAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto& v = w.dataset.train[0];
  const auto outcome = attack.run(v, v, handle);
  EXPECT_GE(outcome.adversarial.data().min(), 0.0f);
  EXPECT_LE(outcome.adversarial.data().max(), 255.0f);
}

TEST(FailureModes, SparseQueryWithZeroIterationsReturnsInitial) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = attack::make_objective_context(handle, v, vt, 8);
  attack::Perturbation pert(v.geometry());
  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 1;  // only the initial evaluation
  const auto result = attack::sparse_query(v, pert, handle, ctx, cfg);
  EXPECT_EQ(result.t_history.size(), 1u);
}

TEST(FailureModes, SparseTransferOnUniformVideoStaysFinite) {
  // A constant video has no texture for the surrogate to grab onto; the
  // attack must still return finite, in-budget masks.
  auto& w = TinyWorld::mutable_instance();
  video::Video flat(w.spec.geometry, 0, 4242);
  flat.data().fill(128.0f);

  attack::SparseTransferConfig cfg;
  cfg.k = 100;
  cfg.n = 2;
  cfg.outer_iterations = 2;
  cfg.theta_steps = 4;
  const auto result =
      attack::sparse_transfer(flat, w.dataset.train[3], *w.surrogate, cfg);
  EXPECT_EQ(result.perturbation.selected_pixels(), 100);
  for (const auto loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  EXPECT_LE(result.perturbation.magnitude().norm_linf(), cfg.tau + 1e-4f);
}

TEST(FailureModes, TimiOnBlackVideoProducesValidPixels) {
  auto& w = TinyWorld::mutable_instance();
  video::Video black(w.spec.geometry, 0, 4243);  // all zeros
  baselines::TimiConfig cfg;
  cfg.iterations = 4;
  baselines::TimiAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome = attack.run(black, w.dataset.train[2], handle);
  // All perturbations must be non-negative (clamped at 0 from below).
  EXPECT_GE(outcome.adversarial.data().min(), 0.0f);
  EXPECT_LE(outcome.adversarial.data().max(), 255.0f);
  EXPECT_LE(outcome.perturbation.norm_linf(), cfg.tau + 0.5f);
}

TEST(FailureModes, EvaluateAttackWithZeroPairs) {
  auto& w = TinyWorld::mutable_instance();
  attack::DuoConfig cfg;
  cfg.transfer.k = 50;
  cfg.transfer.n = 2;
  cfg.query.iter_numQ = 5;
  cfg.iter_numH = 1;
  attack::DuoAttack attack(*w.surrogate, cfg);
  const auto eval = attack::evaluate_attack(attack, *w.victim, {}, 8);
  EXPECT_EQ(eval.pairs.size(), 0u);
  EXPECT_DOUBLE_EQ(eval.mean_ap_m_after_pct, 0.0);
}

TEST(FailureModes, SamplePairsFromSingleClassThrows) {
  // All-same-label pool cannot produce differently-labeled pairs.
  auto& w = TinyWorld::mutable_instance();
  std::vector<video::Video> single_class;
  for (const auto& v : w.dataset.train) {
    if (v.label() == 0) single_class.push_back(v);
  }
  ASSERT_GE(single_class.size(), 2u);
  EXPECT_THROW(attack::sample_attack_pairs(single_class, 1, 5),
               std::logic_error);
}

TEST(FailureModes, QuantizationNeverCreatesOutOfRangePixels) {
  auto& w = TinyWorld::mutable_instance();
  attack::Perturbation p(w.spec.geometry);
  Rng rng(5);
  p.magnitude() = Tensor::uniform(w.spec.geometry.tensor_shape(), -300.0f,
                                  300.0f, rng);  // wildly over budget
  const video::Video adv = p.apply_to(w.dataset.train[0]);
  EXPECT_GE(adv.data().min(), 0.0f);
  EXPECT_LE(adv.data().max(), 255.0f);
  for (std::int64_t i = 0; i < adv.data().size(); ++i) {
    EXPECT_FLOAT_EQ(adv.data()[i], std::round(adv.data()[i]));
  }
}

// ISSUE satellite: the serve-layer fault matrix. Against a deterministic
// victim, every retryable fault class — response timeouts, transient errors,
// dropped responses, and a mix — leaves the attack's trajectory and final
// video bitwise identical to the fault-free reference; only the victim-side
// billing (retries included) may grow.
TEST(FailureModes, ServeFaultMatrixKeepsAttacksBitwiseIdentical) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 11);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  // Calibrate the client's answer timeout to this machine: fault-free
  // service (an in-flight ±ε pair, like the pipelined attack submits) must
  // finish comfortably inside it — under TSan a single forward can take
  // hundreds of ms. Injected delays aim decisively past the timeout so the
  // lost-answer retry path fires, but are capped to bound the test's wall
  // time; on a machine so slow that the cap lands inside the timeout,
  // delays degrade into slow-but-correct answers and the mode still
  // verifies the bitwise contract.
  double baseline_ms = 1.0;
  {
    serve::RetrievalServer server(*w.victim);
    serve::AsyncBlackBoxHandle async(server);
    (void)async.retrieve(v, 8);  // warm-up
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch sw;
      auto plus = async.submit(v, 8);
      auto minus = async.submit(v, 8);
      (void)plus.get();
      (void)minus.get();
      baseline_ms = std::max(baseline_ms, sw.elapsed_ms());
    }
    server.shutdown();
  }
  const double timeout_ms = std::max(50.0, 8.0 * baseline_ms);
  const double injected_delay_ms = std::min(2.5 * timeout_ms, 1000.0);

  struct FaultMode {
    const char* name;
    serve::FaultConfig faults;
  };
  serve::FaultConfig timeouts;  // delays past the client's answer timeout
  timeouts.delay_prob = 0.25;
  timeouts.delay_ms = injected_delay_ms;
  serve::FaultConfig errors;
  errors.error_prob = 0.3;
  serve::FaultConfig drops;
  drops.drop_prob = 0.3;
  serve::FaultConfig mixed;
  mixed.error_prob = 0.15;
  mixed.delay_prob = 0.1;
  mixed.drop_prob = 0.15;
  mixed.delay_ms = injected_delay_ms;
  const FaultMode kModes[] = {
      {"timeout-only", timeouts},
      {"error-only", errors},
      {"drop-only", drops},
      {"mixed", mixed},
  };

  for (const FaultMode& mode : kModes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string(mode.name) + " seed " + std::to_string(seed));
      serve::FaultConfig faults = mode.faults;
      faults.seed = seed;
      serve::ServerConfig scfg;
      scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
      serve::RetrievalServer server(*w.victim, scfg);
      serve::AsyncBlackBoxHandle async(server);
      serve::RetryPolicy policy;
      policy.query_timeout =
          std::chrono::milliseconds(static_cast<int>(timeout_ms));
      policy.max_attempts = 40;
      policy.seed = 100 + seed;
      serve::ResilientHandle resilient(async, policy);

      std::optional<attack::SparseQueryResult> got;
      try {
        got = attack::sparse_query_pipelined(v, pert, resilient, ctx, cfg);
      } catch (const std::exception& e) {
        server.shutdown();
        FAIL() << "retryable faults must never surface: " << e.what();
      }
      server.shutdown();

      EXPECT_EQ(got->t_history, ref.t_history);
      expect_bitwise_equal(got->v_adv.data(), ref.v_adv.data(), "v_adv");
      // Honest accounting: the pipelined run's speculative −ε forwards and
      // every fault-replacing retry billed real victim queries.
      EXPECT_GE(got->queries_spent, ref.queries_spent);
      if (resilient.faults_seen() > 0) {
        EXPECT_GT(resilient.retries(), 0);
      }
    }
  }

  // The serial driver runs unchanged over the same faulty victim through
  // ResilientHandle::retrieve_fn(), with the same bitwise guarantee.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("serial mixed seed " + std::to_string(seed));
    serve::FaultConfig faults = mixed;
    faults.seed = seed;
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);
    serve::RetryPolicy policy;
    policy.query_timeout =
        std::chrono::milliseconds(static_cast<int>(timeout_ms));
    policy.max_attempts = 40;
    policy.seed = 200 + seed;
    serve::ResilientHandle resilient(async, policy);
    retrieval::BlackBoxHandle faulty_handle(resilient.retrieve_fn());

    std::optional<attack::SparseQueryResult> got;
    try {
      got = attack::sparse_query(v, pert, faulty_handle, ctx, cfg);
    } catch (const std::exception& e) {
      server.shutdown();
      FAIL() << "retryable faults must never surface: " << e.what();
    }
    server.shutdown();

    EXPECT_EQ(got->t_history, ref.t_history);
    expect_bitwise_equal(got->v_adv.data(), ref.v_adv.data(), "serial v_adv");
    EXPECT_EQ(got->queries_spent, faulty_handle.query_count());
    EXPECT_GE(resilient.queries_billed(), got->queries_spent);
  }
}

// ISSUE acceptance: a fatally killed SparseQuery — serial and pipelined —
// resumes from its checkpoint and finishes with the trajectory and final
// video of an uninterrupted run, while the billed-query total stays honest
// across both processes.
TEST(FailureModes, CheckpointResumeReproducesUninterruptedRun) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 12);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  // --- Serial: kill at the 13th billed request, then resume. ---
  const std::string serial_path = ::testing::TempDir() + "duo_sq_ck.bin";
  std::remove(serial_path.c_str());
  {
    serve::FaultConfig faults;
    faults.fatal_at = 12;
    serve::FaultySystem faulty(*w.victim, faults);
    retrieval::BlackBoxHandle handle(faulty.retrieve_fn());
    attack::SparseQueryConfig killed = cfg;
    killed.checkpoint_path = serial_path;
    killed.checkpoint_every = 4;
    EXPECT_THROW((void)attack::sparse_query(v, pert, handle, ctx, killed),
                 serve::ServeError);
  }
  {
    attack::SparseQueryConfig resumed_cfg = cfg;
    resumed_cfg.checkpoint_path = serial_path;
    resumed_cfg.resume = true;
    const auto resumed =
        attack::sparse_query(v, pert, direct, ctx, resumed_cfg);
    EXPECT_EQ(resumed.t_history, ref.t_history);
    expect_bitwise_equal(resumed.v_adv.data(), ref.v_adv.data(),
                         "serial resumed v_adv");
    // The killed process billed the fatal attempt plus at most one extra
    // query of the replayed iteration — never fewer queries than fault-free.
    EXPECT_GT(resumed.queries_spent, ref.queries_spent);
    EXPECT_LE(resumed.queries_spent, ref.queries_spent + 2);
  }
  std::remove(serial_path.c_str());

  // --- Pipelined: fatal on an always-consumed +ε request, then resume. ---
  const std::string piped_path = ::testing::TempDir() + "duo_sqp_ck.bin";
  std::remove(piped_path.c_str());
  {
    serve::FaultConfig faults;
    faults.fatal_at = 9;  // +ε request of iteration 5 (odd arrival index)
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);
    serve::ResilientHandle resilient(async);
    attack::SparseQueryConfig killed = cfg;
    killed.checkpoint_path = piped_path;
    killed.checkpoint_every = 2;
    EXPECT_THROW(
        (void)attack::sparse_query_pipelined(v, pert, resilient, ctx, killed),
        serve::ServeError);
    server.shutdown();
  }
  {
    serve::RetrievalServer server(*w.victim);
    serve::AsyncBlackBoxHandle async(server);
    serve::ResilientHandle resilient(async);
    attack::SparseQueryConfig resumed_cfg = cfg;
    resumed_cfg.checkpoint_path = piped_path;
    resumed_cfg.resume = true;
    const auto resumed =
        attack::sparse_query_pipelined(v, pert, resilient, ctx, resumed_cfg);
    server.shutdown();
    EXPECT_EQ(resumed.t_history, ref.t_history);
    expect_bitwise_equal(resumed.v_adv.data(), ref.v_adv.data(),
                         "pipelined resumed v_adv");
    EXPECT_GE(resumed.queries_spent, ref.queries_spent);
  }
  std::remove(piped_path.c_str());
}

// ISSUE acceptance, full pipeline: DuoAttack::run is bitwise stable under
// retryable faults, and a fatal kill mid-attack resumes through the
// round-level checkpoint (plus the killed round's inner checkpoint) to the
// exact fault-free result.
TEST(FailureModes, DuoSurvivesFaultsAndKillResume) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];

  attack::DuoConfig cfg;
  cfg.transfer.k = 100;
  cfg.transfer.n = 2;
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.query.iter_numQ = 10;
  cfg.query.checkpoint_every = 4;
  cfg.iter_numH = 2;
  cfg.m = 8;

  retrieval::BlackBoxHandle direct(*w.victim);
  attack::DuoAttack reference_attack(*w.surrogate, cfg);
  const auto ref = reference_attack.run(v, vt, direct);

  // Retryable faults only: same videos, same logical query count; the extra
  // cost shows up in the resilient client's victim-side billing.
  {
    serve::FaultConfig faults;
    faults.error_prob = 0.2;
    faults.drop_prob = 0.1;
    faults.seed = 5;
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);
    serve::ResilientHandle resilient(async);
    retrieval::BlackBoxHandle faulty_handle(resilient.retrieve_fn());

    attack::DuoAttack faulted_attack(*w.surrogate, cfg);
    const auto faulted = faulted_attack.run(v, vt, faulty_handle);
    server.shutdown();

    EXPECT_EQ(faulted.t_history, ref.t_history);
    expect_bitwise_equal(faulted.adversarial.data(), ref.adversarial.data(),
                         "faulted adversarial");
    EXPECT_EQ(faulted.queries, ref.queries);
    EXPECT_GE(resilient.queries_billed(), ref.queries);
  }

  // Kill three quarters of the way through, then resume to the same video.
  const std::string duo_path = ::testing::TempDir() + "duo_full_ck.bin";
  const std::string round_paths[] = {duo_path + ".h0", duo_path + ".h1"};
  std::remove(duo_path.c_str());
  for (const auto& p : round_paths) std::remove(p.c_str());
  attack::DuoConfig ck_cfg = cfg;
  ck_cfg.checkpoint_path = duo_path;
  {
    serve::FaultConfig faults;
    faults.fatal_at = ref.queries * 3 / 4;
    serve::FaultySystem faulty(*w.victim, faults);
    retrieval::BlackBoxHandle handle(faulty.retrieve_fn());
    attack::DuoAttack killed_attack(*w.surrogate, ck_cfg);
    EXPECT_THROW((void)killed_attack.run(v, vt, handle), serve::ServeError);
  }
  {
    attack::DuoConfig resumed_cfg = ck_cfg;
    resumed_cfg.resume = true;
    attack::DuoAttack resumed_attack(*w.surrogate, resumed_cfg);
    const auto resumed = resumed_attack.run(v, vt, direct);
    EXPECT_EQ(resumed.t_history, ref.t_history);
    expect_bitwise_equal(resumed.adversarial.data(), ref.adversarial.data(),
                         "resumed adversarial");
    EXPECT_GE(resumed.queries, ref.queries);
  }
  std::remove(duo_path.c_str());
  for (const auto& p : round_paths) std::remove(p.c_str());
}

// ISSUE acceptance: against a server that both rate-limits the attacker's
// client_id and injects transient errors, a paced sparse_query_pipelined run
// — every submission first through a shared Pacer token, every throttle
// honored via its retry_after hint — finishes bitwise identical to the
// unthrottled fault-free reference. All policy decisions read a shared
// VirtualClock, so the throttling schedule itself is deterministic, and the
// server/client accounting reconciles exactly against the documented billing
// policy (throttles unbilled; injected faults billed).
TEST(FailureModes, OverloadMatrixKeepsPacedAttackBitwiseIdentical) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 14);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    SCOPED_TRACE("overload seed " + std::to_string(seed));
    auto clock = std::make_shared<serve::VirtualClock>();

    serve::FaultConfig faults;
    faults.error_prob = 0.2;
    faults.seed = seed;
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    scfg.clock = clock;
    scfg.client_rate = 1000.0;  // 1 request/ms sustained per client
    scfg.client_burst = 2.0;
    serve::RetrievalServer server(*w.victim, scfg);

    serve::RequestOptions opts;
    opts.client_id = "attacker";
    serve::AsyncBlackBoxHandle async(server, opts);

    // The pacer is deliberately faster than the server's per-client limit,
    // so the server pushes back and the client's retry_after handling does
    // real work in this test.
    serve::PacerConfig pcfg;
    pcfg.rate_per_sec = 2000.0;
    pcfg.burst = 2.0;
    auto pacer = std::make_shared<serve::Pacer>(pcfg, clock);

    serve::RetryPolicy policy;
    policy.max_attempts = 10;
    policy.query_timeout = std::chrono::milliseconds(10000);
    policy.seed = 300 + seed;
    serve::ResilientHandle resilient(async, policy, pacer, clock);

    std::optional<attack::SparseQueryResult> got;
    try {
      got = attack::sparse_query_pipelined(v, pert, resilient, ctx, cfg);
    } catch (const std::exception& e) {
      server.shutdown();
      FAIL() << "throttling and transient faults must never surface: "
             << e.what();
    }
    server.shutdown();

    EXPECT_EQ(got->t_history, ref.t_history);
    expect_bitwise_equal(got->v_adv.data(), ref.v_adv.data(), "paced v_adv");

    const serve::ServerStats stats = server.stats();
    // The overload machinery actually engaged.
    EXPECT_GT(stats.requests_throttled, 0);
    EXPECT_GT(pacer->waits(), 0);
    // Billing policy: every accepted (billed) request terminated exactly one
    // way — served, failed by injection, expired, or shed.
    EXPECT_EQ(resilient.queries_billed(),
              stats.queries_served + stats.faults_injected +
                  stats.requests_expired + stats.requests_shed);
    // The client saw every throttle denial exactly once, and every injected
    // fault exactly once; the two families are accounted separately.
    EXPECT_EQ(resilient.overloads_seen(), stats.requests_throttled);
    EXPECT_EQ(resilient.faults_seen() - resilient.overloads_seen(),
              stats.faults_injected);
    // Every gate pass took one pacer token: accepted submissions plus the
    // ones the server then throttled.
    EXPECT_EQ(pacer->granted(),
              resilient.queries_billed() + stats.requests_throttled);
  }
}

// ISSUE satellite (overload matrix): admission kReject turn-aways carry a
// retry_after hint that ResilientHandle honors — rejected submissions are
// retried until the queue drains and are never billed, so the victim-side
// bill equals the logical query count exactly.
TEST(FailureModes, AdmissionRejectionsAreRetriedUnbilled) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto expected = direct.retrieve(v, 8);

  serve::FaultConfig faults;  // slow service keeps the queue occupied
  faults.delay_prob = 1.0;
  faults.delay_ms = 150.0;
  serve::ServerConfig scfg;
  scfg.max_batch = 1;
  scfg.queue_capacity = 2;
  scfg.admission = serve::AdmissionPolicy::kReject;
  scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
  serve::RetrievalServer server(*w.victim, scfg);
  serve::AsyncBlackBoxHandle async(server);

  serve::RetryPolicy policy;
  policy.max_attempts = 100;  // rejections are cheap; let the queue drain
  policy.backoff_base = std::chrono::milliseconds(8);
  policy.query_timeout = std::chrono::milliseconds(10000);
  serve::ResilientHandle resilient(async, policy);

  // Four rapid pipelined submissions against capacity 1-in-service + 2
  // queued: at least one is rejected at the door.
  std::vector<serve::PendingRetrieval> pending;
  for (int i = 0; i < 4; ++i) pending.push_back(resilient.submit(v, 8));
  for (auto& p : pending) EXPECT_EQ(p.get(), expected);
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  EXPECT_GE(stats.requests_rejected, 1);
  EXPECT_EQ(resilient.overloads_seen(), stats.requests_rejected);
  // Rejections never reached the victim: the bill is the logical count.
  EXPECT_EQ(resilient.queries_billed(), 4);
  EXPECT_EQ(stats.queries_served, 4);
}

// ISSUE 9 acceptance: an AIMD-paced attack against an *undisclosed* server
// rate limit bills no more than a static pacer hand-tuned to the exact
// limit, stays bitwise identical to the unthrottled reference, and is
// decision-for-decision reproducible — including a mid-run limit change
// (the server drops client_rate between two attack runs; AIMD re-converges
// while the hand-tuned setting silently goes stale).
TEST(FailureModes, AimdPacedAttackBillsNoMoreThanHandTunedStatic) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 14);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  struct Trace {
    std::int64_t billed = 0;
    std::int64_t throttled = 0;
    std::int64_t granted = 0;
    std::int64_t decreases = 0;
    double elapsed_ms = 0.0;
    double final_rate = 0.0;
  };
  // One paced campaign: two back-to-back pipelined attacks against a server
  // whose undisclosed per-client limit drops from 20/s to 10/s in between.
  const auto run = [&](bool aimd) {
    auto clock = std::make_shared<serve::VirtualClock>();
    serve::ServerConfig scfg;
    scfg.clock = clock;
    scfg.client_rate = 20.0;
    scfg.client_burst = 2.0;
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);

    serve::PacerConfig pcfg;
    // The static baseline is hand-tuned to the exact opening limit; AIMD
    // starts from a deliberately bad guess and has to discover it.
    pcfg.rate_per_sec = aimd ? 4.0 : 20.0;
    pcfg.burst = 1.0;
    pcfg.aimd = aimd;
    pcfg.aimd_increase = 100.0;
    auto pacer = std::make_shared<serve::Pacer>(pcfg, clock);

    serve::RetryPolicy policy;
    policy.max_attempts = 10;
    policy.backoff_base = std::chrono::milliseconds(0);
    policy.query_timeout = std::chrono::milliseconds(10000);
    policy.seed = 17;
    serve::ResilientHandle resilient(async, policy, pacer, clock);

    const auto first =
        attack::sparse_query_pipelined(v, pert, resilient, ctx, cfg);
    EXPECT_EQ(first.t_history, ref.t_history);
    expect_bitwise_equal(first.v_adv.data(), ref.v_adv.data(),
                         aimd ? "aimd v_adv (phase 1)" : "static v_adv (1)");

    server.set_client_rate(10.0);
    const auto second =
        attack::sparse_query_pipelined(v, pert, resilient, ctx, cfg);
    EXPECT_EQ(second.t_history, ref.t_history);
    expect_bitwise_equal(second.v_adv.data(), ref.v_adv.data(),
                         aimd ? "aimd v_adv (phase 2)" : "static v_adv (2)");
    server.shutdown();

    // Ledger identity: billed == served + faulted + expired + shed (the
    // only terminal states an accepted request has).
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(resilient.queries_billed(),
              stats.queries_served + stats.faults_injected +
                  stats.requests_expired + stats.requests_shed);
    EXPECT_EQ(resilient.overloads_seen(), stats.requests_throttled);
    EXPECT_EQ(pacer->granted(),
              resilient.queries_billed() + stats.requests_throttled);

    Trace t;
    t.billed = resilient.queries_billed();
    t.throttled = stats.requests_throttled;
    t.granted = pacer->granted();
    t.decreases = pacer->rate_decreases();
    t.elapsed_ms = clock->now_ms();
    t.final_rate = pacer->current_rate();
    return t;
  };

  const Trace adaptive = run(/*aimd=*/true);
  const Trace tuned = run(/*aimd=*/false);

  // The acceptance inequality: discovery costs no extra bill. Throttles are
  // unbilled and retried, so both pacers pay exactly the logical count.
  EXPECT_LE(adaptive.billed, tuned.billed);
  EXPECT_EQ(adaptive.billed, tuned.billed);  // and in fact exactly equal
  // AIMD actually engaged: it probed past the limit and backed off, and
  // after the drop its estimate sits near the *new* limit, not the old one.
  EXPECT_GT(adaptive.throttled, 0);
  EXPECT_GT(adaptive.decreases, 0);
  EXPECT_GE(adaptive.final_rate, 4.0);
  EXPECT_LE(adaptive.final_rate, 22.0);

  // Decision-for-decision reproducible: the identical scenario replays to an
  // identical trace — and the compute-pool width (the DUO_THREADS analogue)
  // must not leak into a single pacer decision.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{7}}) {
    ThreadPool pool(threads);
    set_compute_pool(&pool);
    const Trace replay = run(/*aimd=*/true);
    set_compute_pool(nullptr);
    EXPECT_EQ(replay.billed, adaptive.billed) << threads;
    EXPECT_EQ(replay.throttled, adaptive.throttled) << threads;
    EXPECT_EQ(replay.granted, adaptive.granted) << threads;
    EXPECT_EQ(replay.decreases, adaptive.decreases) << threads;
    EXPECT_DOUBLE_EQ(replay.elapsed_ms, adaptive.elapsed_ms) << threads;
    EXPECT_DOUBLE_EQ(replay.final_rate, adaptive.final_rate) << threads;
  }
}

// ISSUE satellites (circuit breaker + checkpoint GC): when the victim goes
// down mid-attack and stays down, the circuit opens after the configured
// number of consecutive failures and the attack surfaces a typed
// ServeError{kUnavailable} instead of burning its whole retry budget — after
// writing a checkpoint. remove_on_success never deletes the checkpoint of an
// interrupted run; the resumed run reproduces the fault-free result and only
// then garbage-collects the file.
TEST(FailureModes, CircuitBreakerSurfacesUnavailableAndCheckpoints) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 13);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  const std::string ck_path = ::testing::TempDir() + "duo_circuit_ck.bin";
  std::remove(ck_path.c_str());
  {
    serve::FaultConfig faults;
    faults.error_from = 10;  // victim dies at request 10 and stays dead
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);

    auto clock = std::make_shared<serve::VirtualClock>();
    serve::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.backoff_base = std::chrono::milliseconds(0);
    policy.query_timeout = std::chrono::milliseconds(10000);
    policy.circuit_threshold = 3;
    policy.circuit_cooldown_ms = 1e9;  // no probe: stays open once tripped
    serve::ResilientHandle resilient(async, policy, nullptr, clock);

    attack::SparseQueryConfig killed = cfg;
    killed.checkpoint_path = ck_path;
    killed.checkpoint_every = 3;
    killed.remove_on_success = true;  // must NOT fire on the fatal path

    bool surfaced = false;
    try {
      (void)attack::sparse_query_pipelined(v, pert, resilient, ctx, killed);
    } catch (const serve::ServeError& e) {
      surfaced = true;
      EXPECT_EQ(e.code(), serve::ServeErrorCode::kUnavailable);
      EXPECT_FALSE(e.retryable());
      EXPECT_FALSE(e.billed());
    }
    server.shutdown();
    EXPECT_TRUE(surfaced) << "a dead victim must surface as kUnavailable";
    EXPECT_EQ(resilient.circuit_state(), serve::CircuitState::kOpen);
    EXPECT_EQ(resilient.circuit_opens(), 1);
    EXPECT_GE(resilient.fast_failures(), 1);
    // The breaker cut the loss early: far fewer billed queries than the
    // retry budget (5 attempts per query) could have burned.
    EXPECT_LT(resilient.queries_billed(), 20);
    // Interrupted runs keep their checkpoint, remove_on_success or not.
    EXPECT_TRUE(file_exists(ck_path));
  }
  {
    serve::RetrievalServer server(*w.victim);  // the victim came back
    serve::AsyncBlackBoxHandle async(server);
    serve::ResilientHandle resilient(async);
    attack::SparseQueryConfig resumed_cfg = cfg;
    resumed_cfg.checkpoint_path = ck_path;
    resumed_cfg.resume = true;
    resumed_cfg.remove_on_success = true;
    const auto resumed =
        attack::sparse_query_pipelined(v, pert, resilient, ctx, resumed_cfg);
    server.shutdown();
    EXPECT_EQ(resumed.t_history, ref.t_history);
    expect_bitwise_equal(resumed.v_adv.data(), ref.v_adv.data(),
                         "circuit resumed v_adv");
    // Clean finish: the checkpoint was garbage-collected.
    EXPECT_FALSE(file_exists(ck_path));
  }
}

// ISSUE satellite (pacing matrix): two attack clients sharing one API key's
// Pacer, against a rate-limiting fault-injecting server — both finish
// bitwise identical to the reference, the shared-bucket schedule is
// reproducible decision-for-decision across identical runs, and the joint
// bill reconciles with the server's accounting.
TEST(FailureModes, PacingSharedAcrossClientsStaysDeterministic) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 14);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  struct RunTrace {
    std::int64_t granted = 0;
    std::int64_t waits = 0;
    double waited_ms = 0.0;
    std::int64_t throttled = 0;
    std::int64_t billed_a = 0;
    std::int64_t billed_b = 0;
  };

  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    std::vector<RunTrace> traces;
    for (int rep = 0; rep < 2; ++rep) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " rep " +
                   std::to_string(rep));
      auto clock = std::make_shared<serve::VirtualClock>();

      serve::FaultConfig faults;
      faults.error_prob = 0.15;
      faults.seed = seed;
      serve::ServerConfig scfg;
      scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
      scfg.clock = clock;
      scfg.client_rate = 1000.0;
      scfg.client_burst = 2.0;
      serve::RetrievalServer server(*w.victim, scfg);

      serve::PacerConfig pcfg;
      pcfg.rate_per_sec = 2000.0;
      pcfg.burst = 2.0;
      auto pacer = std::make_shared<serve::Pacer>(pcfg, clock);

      serve::RequestOptions opts_a;
      opts_a.client_id = "proc-a";
      serve::RequestOptions opts_b;
      opts_b.client_id = "proc-b";
      serve::AsyncBlackBoxHandle async_a(server, opts_a);
      serve::AsyncBlackBoxHandle async_b(server, opts_b);
      serve::RetryPolicy policy;
      policy.max_attempts = 10;
      policy.query_timeout = std::chrono::milliseconds(10000);
      policy.seed = 400 + seed;
      serve::ResilientHandle res_a(async_a, policy, pacer, clock);
      serve::ResilientHandle res_b(async_b, policy, pacer, clock);

      const auto got_a = attack::sparse_query_pipelined(v, pert, res_a, ctx, cfg);
      const auto got_b = attack::sparse_query_pipelined(v, pert, res_b, ctx, cfg);
      server.shutdown();

      EXPECT_EQ(got_a.t_history, ref.t_history);
      EXPECT_EQ(got_b.t_history, ref.t_history);
      expect_bitwise_equal(got_a.v_adv.data(), ref.v_adv.data(), "client A");
      expect_bitwise_equal(got_b.v_adv.data(), ref.v_adv.data(), "client B");

      const serve::ServerStats stats = server.stats();
      EXPECT_EQ(res_a.queries_billed() + res_b.queries_billed(),
                stats.queries_served + stats.faults_injected);
      traces.push_back({pacer->granted(), pacer->waits(), pacer->waited_ms(),
                        stats.requests_throttled, res_a.queries_billed(),
                        res_b.queries_billed()});
    }
    // Same seed, same configuration: the whole pacing/throttling schedule
    // replays decision-for-decision.
    EXPECT_EQ(traces[0].granted, traces[1].granted) << "seed " << seed;
    EXPECT_EQ(traces[0].waits, traces[1].waits) << "seed " << seed;
    EXPECT_DOUBLE_EQ(traces[0].waited_ms, traces[1].waited_ms)
        << "seed " << seed;
    EXPECT_EQ(traces[0].throttled, traces[1].throttled) << "seed " << seed;
    EXPECT_EQ(traces[0].billed_a, traces[1].billed_a) << "seed " << seed;
    EXPECT_EQ(traces[0].billed_b, traces[1].billed_b) << "seed " << seed;
  }
}

// ISSUE satellite (checkpoint GC at the Duo level): remove_on_success wipes
// the outer and every per-round checkpoint after a clean finish, keeps them
// all after an interrupt, and the resumed run both reproduces the clean
// result and garbage-collects on its own clean exit.
TEST(FailureModes, DuoCheckpointGcRemovesFilesOnlyOnCleanFinish) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];

  attack::DuoConfig cfg;
  cfg.transfer.k = 100;
  cfg.transfer.n = 2;
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.query.iter_numQ = 10;
  cfg.query.checkpoint_every = 4;
  cfg.iter_numH = 2;
  cfg.m = 8;
  const std::string duo_path = ::testing::TempDir() + "duo_gc_ck.bin";
  const std::string round_paths[] = {duo_path + ".h0", duo_path + ".h1"};
  std::remove(duo_path.c_str());
  for (const auto& p : round_paths) std::remove(p.c_str());
  cfg.checkpoint_path = duo_path;
  cfg.remove_on_success = true;

  retrieval::BlackBoxHandle direct(*w.victim);
  attack::DuoAttack clean_attack(*w.surrogate, cfg);
  const auto clean = clean_attack.run(v, vt, direct);
  // Clean finish: every checkpoint file is gone.
  EXPECT_FALSE(file_exists(duo_path));
  for (const auto& p : round_paths) EXPECT_FALSE(file_exists(p));

  // Interrupted: the kill leaves the durable state on disk even with
  // remove_on_success set.
  {
    serve::FaultConfig faults;
    faults.fatal_at = clean.queries / 2;
    serve::FaultySystem faulty(*w.victim, faults);
    retrieval::BlackBoxHandle handle(faulty.retrieve_fn());
    attack::DuoAttack killed_attack(*w.surrogate, cfg);
    EXPECT_THROW((void)killed_attack.run(v, vt, handle), serve::ServeError);
    EXPECT_TRUE(file_exists(duo_path));
  }

  // Resume reproduces the clean result bitwise, then cleans up after itself.
  {
    attack::DuoConfig resumed_cfg = cfg;
    resumed_cfg.resume = true;
    attack::DuoAttack resumed_attack(*w.surrogate, resumed_cfg);
    const auto resumed = resumed_attack.run(v, vt, direct);
    EXPECT_EQ(resumed.t_history, clean.t_history);
    expect_bitwise_equal(resumed.adversarial.data(), clean.adversarial.data(),
                         "gc resumed adversarial");
    EXPECT_FALSE(file_exists(duo_path));
    for (const auto& p : round_paths) EXPECT_FALSE(file_exists(p));
  }
}

}  // namespace
}  // namespace duo
