// Failure-injection and boundary-condition tests: how the library behaves
// under misuse, degenerate inputs, and adversarially unhelpful conditions.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "attack/sparse_query.hpp"
#include "attack/sparse_transfer.hpp"
#include "baselines/timi.hpp"
#include "baselines/vanilla.hpp"
#include "common/stopwatch.hpp"
#include "fixtures.hpp"
#include "metrics/metrics.hpp"
#include "nn/conv3d.hpp"
#include "nn/linear.hpp"
#include "retrieval/index.hpp"
#include "serve/async_handle.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"

namespace duo {
namespace {

using duo::testing::TinyWorld;

attack::Perturbation noisy_support(const video::Video& v, std::uint64_t seed) {
  Rng rng(seed);
  attack::Perturbation p = baselines::random_support(v.geometry(), 150, 3, rng);
  Tensor noise =
      Tensor::uniform(v.geometry().tensor_shape(), -10.0f, 10.0f, rng);
  p.magnitude() = noise * p.pixel_mask() * p.frame_mask();
  return p;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " diverges at element " << i;
  }
}

TEST(FailureModes, ConvRejectsTooSmallInput) {
  Rng rng(1);
  nn::Conv3dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = {3, 3, 3};
  spec.stride = {1, 1, 1};
  spec.padding = {0, 0, 0};
  nn::Conv3d layer(spec, rng);
  // 2×2×2 spatial extent cannot fit a 3×3×3 kernel without padding.
  EXPECT_THROW(layer.forward(Tensor({1, 2, 2, 2})), std::logic_error);
}

TEST(FailureModes, BackwardBeforeForwardThrows) {
  Rng rng(2);
  nn::Linear layer(3, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({2})), std::logic_error);
}

TEST(FailureModes, MismatchedGradShapeThrows) {
  Rng rng(3);
  nn::Linear layer(3, 2, rng);
  (void)layer.forward(Tensor({3}));
  EXPECT_THROW(layer.backward(Tensor({5})), std::logic_error);
}

TEST(FailureModes, EmptyGalleryQueryReturnsEmpty) {
  retrieval::DataNode node(4);
  const auto result = node.query(Tensor({4}), 10);
  EXPECT_TRUE(result.empty());
}

TEST(FailureModes, AttackOnIdenticalSourceAndTargetIsStable) {
  // v == v_t: the targeted objective starts satisfied. The attack must not
  // crash and must return a valid (possibly unchanged) video.
  auto& w = TinyWorld::mutable_instance();
  attack::DuoConfig cfg;
  cfg.transfer.k = 100;
  cfg.transfer.n = 2;
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.query.iter_numQ = 10;
  cfg.iter_numH = 1;
  cfg.m = 8;
  attack::DuoAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto& v = w.dataset.train[0];
  const auto outcome = attack.run(v, v, handle);
  EXPECT_GE(outcome.adversarial.data().min(), 0.0f);
  EXPECT_LE(outcome.adversarial.data().max(), 255.0f);
}

TEST(FailureModes, SparseQueryWithZeroIterationsReturnsInitial) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = attack::make_objective_context(handle, v, vt, 8);
  attack::Perturbation pert(v.geometry());
  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 1;  // only the initial evaluation
  const auto result = attack::sparse_query(v, pert, handle, ctx, cfg);
  EXPECT_EQ(result.t_history.size(), 1u);
}

TEST(FailureModes, SparseTransferOnUniformVideoStaysFinite) {
  // A constant video has no texture for the surrogate to grab onto; the
  // attack must still return finite, in-budget masks.
  auto& w = TinyWorld::mutable_instance();
  video::Video flat(w.spec.geometry, 0, 4242);
  flat.data().fill(128.0f);

  attack::SparseTransferConfig cfg;
  cfg.k = 100;
  cfg.n = 2;
  cfg.outer_iterations = 2;
  cfg.theta_steps = 4;
  const auto result =
      attack::sparse_transfer(flat, w.dataset.train[3], *w.surrogate, cfg);
  EXPECT_EQ(result.perturbation.selected_pixels(), 100);
  for (const auto loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  EXPECT_LE(result.perturbation.magnitude().norm_linf(), cfg.tau + 1e-4f);
}

TEST(FailureModes, TimiOnBlackVideoProducesValidPixels) {
  auto& w = TinyWorld::mutable_instance();
  video::Video black(w.spec.geometry, 0, 4243);  // all zeros
  baselines::TimiConfig cfg;
  cfg.iterations = 4;
  baselines::TimiAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome = attack.run(black, w.dataset.train[2], handle);
  // All perturbations must be non-negative (clamped at 0 from below).
  EXPECT_GE(outcome.adversarial.data().min(), 0.0f);
  EXPECT_LE(outcome.adversarial.data().max(), 255.0f);
  EXPECT_LE(outcome.perturbation.norm_linf(), cfg.tau + 0.5f);
}

TEST(FailureModes, EvaluateAttackWithZeroPairs) {
  auto& w = TinyWorld::mutable_instance();
  attack::DuoConfig cfg;
  cfg.transfer.k = 50;
  cfg.transfer.n = 2;
  cfg.query.iter_numQ = 5;
  cfg.iter_numH = 1;
  attack::DuoAttack attack(*w.surrogate, cfg);
  const auto eval = attack::evaluate_attack(attack, *w.victim, {}, 8);
  EXPECT_EQ(eval.pairs.size(), 0u);
  EXPECT_DOUBLE_EQ(eval.mean_ap_m_after_pct, 0.0);
}

TEST(FailureModes, SamplePairsFromSingleClassThrows) {
  // All-same-label pool cannot produce differently-labeled pairs.
  auto& w = TinyWorld::mutable_instance();
  std::vector<video::Video> single_class;
  for (const auto& v : w.dataset.train) {
    if (v.label() == 0) single_class.push_back(v);
  }
  ASSERT_GE(single_class.size(), 2u);
  EXPECT_THROW(attack::sample_attack_pairs(single_class, 1, 5),
               std::logic_error);
}

TEST(FailureModes, QuantizationNeverCreatesOutOfRangePixels) {
  auto& w = TinyWorld::mutable_instance();
  attack::Perturbation p(w.spec.geometry);
  Rng rng(5);
  p.magnitude() = Tensor::uniform(w.spec.geometry.tensor_shape(), -300.0f,
                                  300.0f, rng);  // wildly over budget
  const video::Video adv = p.apply_to(w.dataset.train[0]);
  EXPECT_GE(adv.data().min(), 0.0f);
  EXPECT_LE(adv.data().max(), 255.0f);
  for (std::int64_t i = 0; i < adv.data().size(); ++i) {
    EXPECT_FLOAT_EQ(adv.data()[i], std::round(adv.data()[i]));
  }
}

// ISSUE satellite: the serve-layer fault matrix. Against a deterministic
// victim, every retryable fault class — response timeouts, transient errors,
// dropped responses, and a mix — leaves the attack's trajectory and final
// video bitwise identical to the fault-free reference; only the victim-side
// billing (retries included) may grow.
TEST(FailureModes, ServeFaultMatrixKeepsAttacksBitwiseIdentical) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 11);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  // Calibrate the client's answer timeout to this machine: fault-free
  // service (an in-flight ±ε pair, like the pipelined attack submits) must
  // finish comfortably inside it — under TSan a single forward can take
  // hundreds of ms. Injected delays aim decisively past the timeout so the
  // lost-answer retry path fires, but are capped to bound the test's wall
  // time; on a machine so slow that the cap lands inside the timeout,
  // delays degrade into slow-but-correct answers and the mode still
  // verifies the bitwise contract.
  double baseline_ms = 1.0;
  {
    serve::RetrievalServer server(*w.victim);
    serve::AsyncBlackBoxHandle async(server);
    (void)async.retrieve(v, 8);  // warm-up
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch sw;
      auto plus = async.submit(v, 8);
      auto minus = async.submit(v, 8);
      (void)plus.get();
      (void)minus.get();
      baseline_ms = std::max(baseline_ms, sw.elapsed_ms());
    }
    server.shutdown();
  }
  const double timeout_ms = std::max(50.0, 8.0 * baseline_ms);
  const double injected_delay_ms = std::min(2.5 * timeout_ms, 1000.0);

  struct FaultMode {
    const char* name;
    serve::FaultConfig faults;
  };
  serve::FaultConfig timeouts;  // delays past the client's answer timeout
  timeouts.delay_prob = 0.25;
  timeouts.delay_ms = injected_delay_ms;
  serve::FaultConfig errors;
  errors.error_prob = 0.3;
  serve::FaultConfig drops;
  drops.drop_prob = 0.3;
  serve::FaultConfig mixed;
  mixed.error_prob = 0.15;
  mixed.delay_prob = 0.1;
  mixed.drop_prob = 0.15;
  mixed.delay_ms = injected_delay_ms;
  const FaultMode kModes[] = {
      {"timeout-only", timeouts},
      {"error-only", errors},
      {"drop-only", drops},
      {"mixed", mixed},
  };

  for (const FaultMode& mode : kModes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string(mode.name) + " seed " + std::to_string(seed));
      serve::FaultConfig faults = mode.faults;
      faults.seed = seed;
      serve::ServerConfig scfg;
      scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
      serve::RetrievalServer server(*w.victim, scfg);
      serve::AsyncBlackBoxHandle async(server);
      serve::RetryPolicy policy;
      policy.query_timeout =
          std::chrono::milliseconds(static_cast<int>(timeout_ms));
      policy.max_attempts = 40;
      policy.seed = 100 + seed;
      serve::ResilientHandle resilient(async, policy);

      std::optional<attack::SparseQueryResult> got;
      try {
        got = attack::sparse_query_pipelined(v, pert, resilient, ctx, cfg);
      } catch (const std::exception& e) {
        server.shutdown();
        FAIL() << "retryable faults must never surface: " << e.what();
      }
      server.shutdown();

      EXPECT_EQ(got->t_history, ref.t_history);
      expect_bitwise_equal(got->v_adv.data(), ref.v_adv.data(), "v_adv");
      // Honest accounting: the pipelined run's speculative −ε forwards and
      // every fault-replacing retry billed real victim queries.
      EXPECT_GE(got->queries_spent, ref.queries_spent);
      if (resilient.faults_seen() > 0) {
        EXPECT_GT(resilient.retries(), 0);
      }
    }
  }

  // The serial driver runs unchanged over the same faulty victim through
  // ResilientHandle::retrieve_fn(), with the same bitwise guarantee.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("serial mixed seed " + std::to_string(seed));
    serve::FaultConfig faults = mixed;
    faults.seed = seed;
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);
    serve::RetryPolicy policy;
    policy.query_timeout =
        std::chrono::milliseconds(static_cast<int>(timeout_ms));
    policy.max_attempts = 40;
    policy.seed = 200 + seed;
    serve::ResilientHandle resilient(async, policy);
    retrieval::BlackBoxHandle faulty_handle(resilient.retrieve_fn());

    std::optional<attack::SparseQueryResult> got;
    try {
      got = attack::sparse_query(v, pert, faulty_handle, ctx, cfg);
    } catch (const std::exception& e) {
      server.shutdown();
      FAIL() << "retryable faults must never surface: " << e.what();
    }
    server.shutdown();

    EXPECT_EQ(got->t_history, ref.t_history);
    expect_bitwise_equal(got->v_adv.data(), ref.v_adv.data(), "serial v_adv");
    EXPECT_EQ(got->queries_spent, faulty_handle.query_count());
    EXPECT_GE(resilient.queries_billed(), got->queries_spent);
  }
}

// ISSUE acceptance: a fatally killed SparseQuery — serial and pipelined —
// resumes from its checkpoint and finishes with the trajectory and final
// video of an uninterrupted run, while the billed-query total stays honest
// across both processes.
TEST(FailureModes, CheckpointResumeReproducesUninterruptedRun) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 12);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  // --- Serial: kill at the 13th billed request, then resume. ---
  const std::string serial_path = ::testing::TempDir() + "duo_sq_ck.bin";
  std::remove(serial_path.c_str());
  {
    serve::FaultConfig faults;
    faults.fatal_at = 12;
    serve::FaultySystem faulty(*w.victim, faults);
    retrieval::BlackBoxHandle handle(faulty.retrieve_fn());
    attack::SparseQueryConfig killed = cfg;
    killed.checkpoint_path = serial_path;
    killed.checkpoint_every = 4;
    EXPECT_THROW((void)attack::sparse_query(v, pert, handle, ctx, killed),
                 serve::ServeError);
  }
  {
    attack::SparseQueryConfig resumed_cfg = cfg;
    resumed_cfg.checkpoint_path = serial_path;
    resumed_cfg.resume = true;
    const auto resumed =
        attack::sparse_query(v, pert, direct, ctx, resumed_cfg);
    EXPECT_EQ(resumed.t_history, ref.t_history);
    expect_bitwise_equal(resumed.v_adv.data(), ref.v_adv.data(),
                         "serial resumed v_adv");
    // The killed process billed the fatal attempt plus at most one extra
    // query of the replayed iteration — never fewer queries than fault-free.
    EXPECT_GT(resumed.queries_spent, ref.queries_spent);
    EXPECT_LE(resumed.queries_spent, ref.queries_spent + 2);
  }
  std::remove(serial_path.c_str());

  // --- Pipelined: fatal on an always-consumed +ε request, then resume. ---
  const std::string piped_path = ::testing::TempDir() + "duo_sqp_ck.bin";
  std::remove(piped_path.c_str());
  {
    serve::FaultConfig faults;
    faults.fatal_at = 9;  // +ε request of iteration 5 (odd arrival index)
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);
    serve::ResilientHandle resilient(async);
    attack::SparseQueryConfig killed = cfg;
    killed.checkpoint_path = piped_path;
    killed.checkpoint_every = 2;
    EXPECT_THROW(
        (void)attack::sparse_query_pipelined(v, pert, resilient, ctx, killed),
        serve::ServeError);
    server.shutdown();
  }
  {
    serve::RetrievalServer server(*w.victim);
    serve::AsyncBlackBoxHandle async(server);
    serve::ResilientHandle resilient(async);
    attack::SparseQueryConfig resumed_cfg = cfg;
    resumed_cfg.checkpoint_path = piped_path;
    resumed_cfg.resume = true;
    const auto resumed =
        attack::sparse_query_pipelined(v, pert, resilient, ctx, resumed_cfg);
    server.shutdown();
    EXPECT_EQ(resumed.t_history, ref.t_history);
    expect_bitwise_equal(resumed.v_adv.data(), ref.v_adv.data(),
                         "pipelined resumed v_adv");
    EXPECT_GE(resumed.queries_spent, ref.queries_spent);
  }
  std::remove(piped_path.c_str());
}

// ISSUE acceptance, full pipeline: DuoAttack::run is bitwise stable under
// retryable faults, and a fatal kill mid-attack resumes through the
// round-level checkpoint (plus the killed round's inner checkpoint) to the
// exact fault-free result.
TEST(FailureModes, DuoSurvivesFaultsAndKillResume) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];

  attack::DuoConfig cfg;
  cfg.transfer.k = 100;
  cfg.transfer.n = 2;
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.query.iter_numQ = 10;
  cfg.query.checkpoint_every = 4;
  cfg.iter_numH = 2;
  cfg.m = 8;

  retrieval::BlackBoxHandle direct(*w.victim);
  attack::DuoAttack reference_attack(*w.surrogate, cfg);
  const auto ref = reference_attack.run(v, vt, direct);

  // Retryable faults only: same videos, same logical query count; the extra
  // cost shows up in the resilient client's victim-side billing.
  {
    serve::FaultConfig faults;
    faults.error_prob = 0.2;
    faults.drop_prob = 0.1;
    faults.seed = 5;
    serve::ServerConfig scfg;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);
    serve::ResilientHandle resilient(async);
    retrieval::BlackBoxHandle faulty_handle(resilient.retrieve_fn());

    attack::DuoAttack faulted_attack(*w.surrogate, cfg);
    const auto faulted = faulted_attack.run(v, vt, faulty_handle);
    server.shutdown();

    EXPECT_EQ(faulted.t_history, ref.t_history);
    expect_bitwise_equal(faulted.adversarial.data(), ref.adversarial.data(),
                         "faulted adversarial");
    EXPECT_EQ(faulted.queries, ref.queries);
    EXPECT_GE(resilient.queries_billed(), ref.queries);
  }

  // Kill three quarters of the way through, then resume to the same video.
  const std::string duo_path = ::testing::TempDir() + "duo_full_ck.bin";
  const std::string round_paths[] = {duo_path + ".h0", duo_path + ".h1"};
  std::remove(duo_path.c_str());
  for (const auto& p : round_paths) std::remove(p.c_str());
  attack::DuoConfig ck_cfg = cfg;
  ck_cfg.checkpoint_path = duo_path;
  {
    serve::FaultConfig faults;
    faults.fatal_at = ref.queries * 3 / 4;
    serve::FaultySystem faulty(*w.victim, faults);
    retrieval::BlackBoxHandle handle(faulty.retrieve_fn());
    attack::DuoAttack killed_attack(*w.surrogate, ck_cfg);
    EXPECT_THROW((void)killed_attack.run(v, vt, handle), serve::ServeError);
  }
  {
    attack::DuoConfig resumed_cfg = ck_cfg;
    resumed_cfg.resume = true;
    attack::DuoAttack resumed_attack(*w.surrogate, resumed_cfg);
    const auto resumed = resumed_attack.run(v, vt, direct);
    EXPECT_EQ(resumed.t_history, ref.t_history);
    expect_bitwise_equal(resumed.adversarial.data(), ref.adversarial.data(),
                         "resumed adversarial");
    EXPECT_GE(resumed.queries, ref.queries);
  }
  std::remove(duo_path.c_str());
  for (const auto& p : round_paths) std::remove(p.c_str());
}

}  // namespace
}  // namespace duo
