// CheckGrad sweep of every Module and full extractor architecture, NaN/Inf
// forward-propagation sanity for the pooling/norm layers (including the
// MaxPool3d all-NaN-window out-of-bounds regression), and the Conv3d
// direct-vs-GEMM kernel equivalence suite, up to an end-to-end attack on the
// seed fixtures.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "attack/sparse_query.hpp"
#include "baselines/vanilla.hpp"
#include "common/thread_pool.hpp"
#include "fixtures.hpp"
#include "models/feature_extractor.hpp"
#include "nn/activations.hpp"
#include "nn/compose.hpp"
#include "nn/conv3d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "nn/lstm.hpp"
#include "nn/norm.hpp"
#include "nn/pool3d.hpp"
#include "nn/residual.hpp"
#include "video/synthetic.hpp"

namespace duo::nn {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// RAII: pin the process-wide default Conv3d kernel, restore the env-derived
// default on scope exit.
struct KernelGuard {
  explicit KernelGuard(Conv3dKernel k) { set_default_conv3d_kernel(k); }
  ~KernelGuard() { set_default_conv3d_kernel(Conv3dKernel::kAuto); }
};

Conv3dSpec make_spec(std::int64_t cin, std::int64_t cout,
                     std::array<std::int64_t, 3> kernel,
                     std::array<std::int64_t, 3> stride,
                     std::array<std::int64_t, 3> padding, bool bias = true,
                     Conv3dKernel impl = Conv3dKernel::kAuto) {
  Conv3dSpec spec;
  spec.in_channels = cin;
  spec.out_channels = cout;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.padding = padding;
  spec.bias = bias;
  spec.kernel_impl = impl;
  return spec;
}

void expect_checkgrad_ok(Module& module, const Tensor::Shape& in_shape,
                         CheckGradConfig cfg = {}) {
  const auto report = CheckGrad(module, in_shape, cfg);
  EXPECT_TRUE(report.ok) << module.name() << ": " << report.summary();
  EXPECT_GT(report.coordinates_checked, 0);
}

// ---------------------------------------------------------------------------
// Harness self-tests
// ---------------------------------------------------------------------------

// A layer whose backward is wrong by a factor: the harness must flag it.
class BrokenScale final : public Module {
 public:
  Tensor forward(const Tensor& input) override { return input * 2.0f; }
  Tensor backward(const Tensor& grad_output) override {
    return grad_output * 3.0f;  // should be 2.0f
  }
  std::string name() const override { return "BrokenScale"; }
};

TEST(CheckGradHarness, FlagsABrokenInputGradient) {
  BrokenScale layer;
  const auto report = CheckGrad(layer, {6});
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.outliers.empty());
  EXPECT_EQ(report.outliers.front().tensor, "input");
  EXPECT_NE(report.summary().find("FAILED"), std::string::npos);
}

// A parameter gradient off by a sign: flagged via the parameter sweep.
class BrokenBias final : public Module {
 public:
  BrokenBias() : bias_(Tensor({4}, 0.1f)) {}
  Tensor forward(const Tensor& input) override {
    return input + bias_.value;
  }
  Tensor backward(const Tensor& grad_output) override {
    bias_.grad.axpy(-1.0f, grad_output);  // should be +=
    return grad_output;
  }
  std::vector<Parameter*> parameters() override { return {&bias_}; }
  std::string name() const override { return "BrokenBias"; }

 private:
  Parameter bias_;
};

TEST(CheckGradHarness, FlagsABrokenParameterGradient) {
  BrokenBias layer;
  CheckGradConfig cfg;
  cfg.check_input = false;
  const auto report = CheckGrad(layer, {4}, cfg);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.outliers.empty());
  EXPECT_NE(report.outliers.front().tensor.find("param[0]"), std::string::npos);
}

TEST(CheckGradHarness, StridedSamplingStillCoversEveryTensor) {
  Rng rng(1);
  Sequential seq;
  seq.emplace<Linear>(6, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 3, rng);
  CheckGradConfig cfg;
  cfg.max_probes_per_tensor = 4;
  const auto report = CheckGrad(seq, {6}, cfg);
  EXPECT_TRUE(report.ok) << report.summary();
  // input + 4 parameter tensors, at most 4 probes each, at least 1 each.
  EXPECT_GE(report.coordinates_checked, 5);
  EXPECT_LE(report.coordinates_checked, 5 * 4);
}

// ---------------------------------------------------------------------------
// Every-layer sweep
// ---------------------------------------------------------------------------

TEST(CheckGradLayers, Linear) {
  Rng rng(2);
  Linear layer(6, 4, rng);
  expect_checkgrad_ok(layer, {6});
}

TEST(CheckGradLayers, Activations) {
  ReLU relu;
  // ReLU is non-differentiable at 0; uniform(-1,1) draws are a.s. away from
  // it at eps = 1e-3 for this seed.
  expect_checkgrad_ok(relu, {16});
  Tanh tanh_layer;
  expect_checkgrad_ok(tanh_layer, {16});
  Sigmoid sigmoid;
  expect_checkgrad_ok(sigmoid, {16});
}

TEST(CheckGradLayers, Flatten) {
  Flatten flatten;
  expect_checkgrad_ok(flatten, {2, 3, 4});
}

TEST(CheckGradLayers, Conv3dBothKernels) {
  for (const auto impl : {Conv3dKernel::kDirect, Conv3dKernel::kGemm}) {
    Rng rng(3);
    Conv3d cube(make_spec(2, 3, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, true, impl),
                rng);
    expect_checkgrad_ok(cube, {2, 4, 5, 5});

    Conv3d strided(
        make_spec(2, 2, {2, 3, 3}, {1, 2, 2}, {0, 1, 1}, true, impl), rng);
    expect_checkgrad_ok(strided, {2, 3, 5, 5});

    Conv3d pointwise_nobias(
        make_spec(3, 4, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}, false, impl), rng);
    expect_checkgrad_ok(pointwise_nobias, {3, 2, 3, 3});
  }
}

TEST(CheckGradLayers, Pools) {
  MaxPool3d max_pool(std::array<std::int64_t, 3>{2, 2, 2});
  expect_checkgrad_ok(max_pool, {2, 4, 4, 4});
  AvgPool3d avg_pool(std::array<std::int64_t, 3>{2, 2, 2});
  expect_checkgrad_ok(avg_pool, {2, 4, 4, 4});
  GlobalAvgPool global_pool;
  expect_checkgrad_ok(global_pool, {3, 2, 3, 3});
  SpatialAvgPool spatial_pool;
  expect_checkgrad_ok(spatial_pool, {3, 2, 3, 3});
  TemporalMean temporal_mean;
  expect_checkgrad_ok(temporal_mean, {4, 5});
}

TEST(CheckGradLayers, InstanceNorm3d) {
  InstanceNorm3d layer(2);
  CheckGradConfig cfg;
  cfg.tolerance = 3e-2;  // normalization amplifies finite-difference noise
  expect_checkgrad_ok(layer, {2, 2, 3, 3}, cfg);
}

TEST(CheckGradLayers, Lstm) {
  Rng rng(4);
  Lstm layer(5, 7, rng);
  CheckGradConfig cfg;
  cfg.tolerance = 3e-2;  // BPTT through gate saturations
  expect_checkgrad_ok(layer, {6, 5}, cfg);
}

TEST(CheckGradLayers, ResidualAndParallel) {
  Rng rng(5);
  Residual identity(std::make_unique<Conv3d>(
      make_spec(2, 2, {1, 3, 3}, {1, 1, 1}, {0, 1, 1}), rng));
  expect_checkgrad_ok(identity, {2, 2, 4, 4});

  Residual projected(
      std::make_unique<Conv3d>(
          make_spec(2, 3, {1, 3, 3}, {1, 1, 1}, {0, 1, 1}), rng),
      std::make_unique<Conv3d>(
          make_spec(2, 3, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}), rng));
  expect_checkgrad_ok(projected, {2, 2, 4, 4});

  auto parallel = std::make_unique<Parallel>();
  parallel->add(std::make_unique<Conv3d>(
      make_spec(2, 2, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}), rng));
  parallel->add(std::make_unique<Conv3d>(
      make_spec(2, 3, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}), rng));
  expect_checkgrad_ok(*parallel, {2, 2, 3, 3});
}

// ---------------------------------------------------------------------------
// Losses (BatchMetricLoss is not a Module; sweep via numerical_gradient)
// ---------------------------------------------------------------------------

void expect_loss_grads_ok(BatchMetricLoss& loss, std::uint64_t seed,
                          double tolerance = 3e-2) {
  Rng rng(seed);
  const Tensor features = Tensor::uniform({6, 5}, -1.0f, 1.0f, rng);
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  const auto result = loss.compute(features, labels);
  const Tensor numerical = numerical_gradient(
      [&](const Tensor& probe) { return loss.compute(probe, labels).loss; },
      features);
  EXPECT_LT(gradient_max_relative_error(result.feature_grads, numerical),
            tolerance)
      << loss.name();

  // Loss-owned parameters (ArcFace class weights).
  for (auto* param : loss.parameters()) {
    // Parameter gradients are not exposed by compute(); verify via the
    // loss value's sensitivity instead: perturb and check the loss moves in
    // the direction the analytic feature gradient machinery implies. A full
    // analytic parameter gradient is not part of the BatchMetricLoss
    // contract, so just assert the objective is smooth in the parameters.
    Tensor& v = param->value;
    const float orig = v[0];
    v[0] = orig + 1e-3f;
    const double up = loss.compute(features, labels).loss;
    v[0] = orig - 1e-3f;
    const double down = loss.compute(features, labels).loss;
    v[0] = orig;
    EXPECT_TRUE(std::isfinite(up) && std::isfinite(down)) << loss.name();
  }
}

TEST(CheckGradLosses, AllMetricLosses) {
  Rng rng(6);
  TripletMarginLoss triplet;
  expect_loss_grads_ok(triplet, 10);
  ArcFaceLoss arcface(5, 3, rng);
  expect_loss_grads_ok(arcface, 11);
  LiftedStructureLoss lifted;
  expect_loss_grads_ok(lifted, 12);
  AngularLoss angular;
  expect_loss_grads_ok(angular, 13);
}

TEST(CheckGradLosses, RankedTripletLoss) {
  Rng rng(7);
  const Tensor anchor = Tensor::uniform({6}, -1.0f, 1.0f, rng);
  const Tensor closer = Tensor::uniform({6}, -1.0f, 1.0f, rng);
  const Tensor farther = Tensor::uniform({6}, -1.0f, 1.0f, rng);
  const auto result = ranked_triplet_loss(anchor, closer, farther, 0.2f);
  const Tensor num_anchor = numerical_gradient(
      [&](const Tensor& probe) {
        return ranked_triplet_loss(probe, closer, farther, 0.2f).loss;
      },
      anchor);
  EXPECT_LT(gradient_max_relative_error(result.anchor_grad, num_anchor), 2e-2);
}

// ---------------------------------------------------------------------------
// Full extractor architectures (sampled sweep; both Conv3d kernels)
// ---------------------------------------------------------------------------

// Adapts a FeatureExtractor to the Module interface CheckGrad consumes.
class ExtractorAsModule final : public Module {
 public:
  explicit ExtractorAsModule(models::FeatureExtractor& ex) : ex_(ex) {}
  Tensor forward(const Tensor& input) override {
    return ex_.extract_model_input(input);
  }
  Tensor backward(const Tensor& grad_output) override {
    return ex_.backward_to_input(grad_output);
  }
  std::vector<Parameter*> parameters() override { return ex_.parameters(); }
  std::string name() const override { return "Extractor:" + ex_.name(); }

 private:
  models::FeatureExtractor& ex_;
};

TEST(CheckGradArchitectures, AllExtractorsBothKernels) {
  const video::VideoGeometry geometry{8, 16, 16, 3};
  const std::vector<models::ModelKind> kinds = {
      models::ModelKind::kC3D,      models::ModelKind::kResNet18,
      models::ModelKind::kResNet34, models::ModelKind::kI3D,
      models::ModelKind::kTPN,      models::ModelKind::kSlowFast,
      models::ModelKind::kLstmNet};
  for (const auto impl : {Conv3dKernel::kDirect, Conv3dKernel::kGemm}) {
    KernelGuard guard(impl);
    for (const auto kind : kinds) {
      Rng rng(8);
      auto extractor = models::make_extractor(kind, geometry, 8, rng);
      ExtractorAsModule module(*extractor);
      CheckGradConfig cfg;
      cfg.max_probes_per_tensor = 6;  // full sweeps cost 2 forwards/coord
      // Deep float32 chains: the objective's roundoff (~|f|·2⁻²³) divided by
      // 2·eps dominates at the per-layer defaults, and it is identical for
      // both kernels — so widen the step and the noise floor instead of
      // weakening the per-layer sweeps.
      cfg.eps = 1e-2f;
      cfg.tolerance = 1e-1;
      cfg.abs_tolerance = 2e-3;
      // Model-input layout is [C, T, H, W] (video::Video::to_model_input).
      const Tensor::Shape in_shape = {geometry.channels, geometry.frames,
                                      geometry.height, geometry.width};
      const auto report = CheckGrad(module, in_shape, cfg);
      // Deep nets are non-smooth (ReLU/MaxPool kinks) and float32 roundoff
      // through hundreds of layers leaves a residue of per-coordinate
      // finite-difference artifacts no eps can eliminate — so unlike the
      // strict per-layer sweeps, this is a structural check: a broken
      // backward flags (nearly) every probe of its tensor, while noise
      // scatters one or two flags across many tensors.
      std::map<std::string, int> per_tensor;
      for (const auto& o : report.outliers) ++per_tensor[o.tensor];
      for (const auto& [label, count] : per_tensor) {
        EXPECT_LE(count, 3)
            << models::model_kind_name(kind) << " ("
            << conv3d_kernel_name(impl) << ") " << label
            << " flags most of its probes: " << report.summary();
      }
      EXPECT_LE(static_cast<double>(report.outliers.size()),
                0.2 * static_cast<double>(report.coordinates_checked))
          << models::model_kind_name(kind) << " ("
          << conv3d_kernel_name(impl) << "): " << report.summary();
    }
  }
}

// ---------------------------------------------------------------------------
// NaN/Inf forward propagation sanity (pooling + norm)
// ---------------------------------------------------------------------------

// Regression for the MaxPool3d out-of-bounds scatter: a window whose values
// are all NaN never updated best/best_idx (NaN > -inf is false), so argmax_
// kept -1 and backward wrote gx[-1]. On the fixed code the window's first
// element seeds the argmax: forward is NaN, backward routes the gradient to
// a valid in-window index. On the old code this test fails at the isnan
// assertion (the output was -inf) and backward is an out-of-bounds write
// under ASan.
TEST(NanSanity, MaxPool3dAllNaNWindowRegression) {
  MaxPool3d layer(std::array<std::int64_t, 3>{1, 2, 2});
  Tensor x({1, 1, 2, 2}, std::vector<float>{kNaN, kNaN, kNaN, kNaN});
  const Tensor out = layer.forward(x);
  ASSERT_EQ(out.size(), 1);
  EXPECT_TRUE(std::isnan(out[0]));

  Tensor gy({1, 1, 1, 1}, std::vector<float>{2.5f});
  const Tensor gx = layer.backward(gy);
  ASSERT_EQ(gx.shape(), x.shape());
  // Gradient scatters to the window's first element — an in-bounds index.
  EXPECT_FLOAT_EQ(gx[0], 2.5f);
  EXPECT_FLOAT_EQ(gx[1], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
  EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

// Same degenerate shape with an all -inf window: also never satisfies
// `x > best` under a -inf sentinel, so it hit the same gx[-1] scatter.
TEST(NanSanity, MaxPool3dAllNegInfWindow) {
  MaxPool3d layer(std::array<std::int64_t, 3>{1, 2, 2});
  Tensor x({1, 1, 2, 2}, std::vector<float>{-kInf, -kInf, -kInf, -kInf});
  const Tensor out = layer.forward(x);
  EXPECT_EQ(out[0], -kInf);
  const Tensor gx = layer.backward(Tensor::ones({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(gx[0], 1.0f);
}

// A NaN-poisoned window must not disturb its clean neighbors.
TEST(NanSanity, MaxPool3dNaNWindowIsolatedFromNeighbors) {
  MaxPool3d layer(std::array<std::int64_t, 3>{1, 2, 2});
  Tensor x({1, 1, 2, 4}, std::vector<float>{kNaN, kNaN, 1.0f, 5.0f,  //
                                            kNaN, kNaN, -2.0f, 3.0f});
  const Tensor out = layer.forward(x);
  ASSERT_EQ(out.size(), 2);
  EXPECT_TRUE(std::isnan(out[0]));
  EXPECT_FLOAT_EQ(out[1], 5.0f);

  Tensor gy({1, 1, 1, 2}, std::vector<float>{1.0f, 1.0f});
  const Tensor gx = layer.backward(gy);
  EXPECT_FLOAT_EQ(gx[0], 1.0f);  // first element of the NaN window
  EXPECT_FLOAT_EQ(gx[3], 1.0f);  // argmax (5.0) of the clean window
}

TEST(NanSanity, MaxPool3dBehaviorUnchangedOnFiniteInput) {
  // The seeded argmax must keep first-strict-maximum semantics.
  MaxPool3d layer(std::array<std::int64_t, 3>{1, 2, 2});
  Tensor x({1, 1, 2, 2}, std::vector<float>{3.0f, 3.0f, -2.0f, 1.0f});
  const Tensor out = layer.forward(x);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  const Tensor gx = layer.backward(Tensor::ones({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(gx[0], 1.0f);  // ties keep the first occurrence
  EXPECT_FLOAT_EQ(gx[1], 0.0f);
}

TEST(NanSanity, AvgPool3dPropagatesNaNAndInf) {
  AvgPool3d layer(std::array<std::int64_t, 3>{1, 2, 2});
  Tensor x({1, 1, 2, 4}, std::vector<float>{kNaN, 1.0f, kInf, 2.0f,  //
                                            1.0f, 1.0f, 3.0f, 4.0f});
  const Tensor out = layer.forward(x);
  EXPECT_TRUE(std::isnan(out[0]));
  EXPECT_TRUE(std::isinf(out[1]));
}

TEST(NanSanity, InstanceNorm3dPropagatesNaNWithoutCrashing) {
  InstanceNorm3d layer(1);
  Tensor x({1, 1, 2, 2}, std::vector<float>{kNaN, 1.0f, 2.0f, 3.0f});
  const Tensor out = layer.forward(x);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isnan(out[i])) << i;  // channel stats absorb the NaN
  }
  const Tensor gx = layer.backward(Tensor::ones(x.shape()));
  ASSERT_EQ(gx.shape(), x.shape());
}

// ---------------------------------------------------------------------------
// Conv3d kernel equivalence: direct vs im2col/GEMM
// ---------------------------------------------------------------------------

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

struct KernelRun {
  Tensor out, gx, gw, gb;
};

KernelRun run_kernel(const Conv3dSpec& base, Conv3dKernel impl,
                     const Tensor::Shape& in_shape, std::uint64_t seed) {
  Conv3dSpec spec = base;
  spec.kernel_impl = impl;
  Rng rng(seed);
  Conv3d conv(spec, rng);
  Rng xrng(seed + 1);
  const Tensor x = Tensor::uniform(in_shape, -1.0f, 1.0f, xrng);
  KernelRun r;
  r.out = conv.forward(x);
  const Tensor gy = Tensor::uniform(r.out.shape(), -1.0f, 1.0f, xrng);
  r.gx = conv.backward(gy);
  r.gw = conv.parameters()[0]->grad;
  if (spec.bias) r.gb = conv.parameters()[1]->grad;
  return r;
}

TEST(Conv3dKernels, GemmMatchesDirectOnForwardAndParamGrads) {
  struct Case {
    Conv3dSpec spec;
    Tensor::Shape in;
  };
  const std::vector<Case> cases = {
      {make_spec(2, 3, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}), {2, 4, 6, 6}},
      {make_spec(3, 2, {2, 3, 3}, {1, 2, 2}, {0, 1, 1}), {3, 3, 7, 7}},
      {make_spec(1, 4, {1, 3, 3}, {1, 1, 1}, {0, 1, 1}), {1, 3, 5, 5}},
      {make_spec(4, 4, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}, false), {4, 2, 4, 4}},
      {make_spec(2, 2, {3, 3, 3}, {2, 2, 2}, {1, 1, 1}), {2, 5, 9, 9}},
  };
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const auto direct =
        run_kernel(cases[c].spec, Conv3dKernel::kDirect, cases[c].in, 30 + c);
    const auto gemm =
        run_kernel(cases[c].spec, Conv3dKernel::kGemm, cases[c].in, 30 + c);
    // Forward and weight/bias grads accumulate the identical chain in the
    // identical order in both kernels — bitwise equal.
    expect_bitwise_equal(direct.out, gemm.out, "forward");
    expect_bitwise_equal(direct.gw, gemm.gw, "weight grad");
    if (cases[c].spec.bias) {
      expect_bitwise_equal(direct.gb, gemm.gb, "bias grad");
    }
    // The input gradient reduction is reassociated (sum over channels before
    // the tap scatter): numerically equivalent, not bitwise.
    ASSERT_EQ(direct.gx.shape(), gemm.gx.shape());
    EXPECT_TRUE(direct.gx.allclose(gemm.gx, 1e-4f)) << "case " << c;
  }
}

TEST(Conv3dKernels, GemmBitwiseAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    set_compute_pool(&pool);
    const auto r = run_kernel(make_spec(3, 8, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}),
                              Conv3dKernel::kGemm, {3, 6, 10, 10}, 40);
    set_compute_pool(nullptr);
    return r;
  };
  const KernelRun serial = run(1);
  const KernelRun parallel = run(8);
  expect_bitwise_equal(serial.out, parallel.out, "gemm output");
  expect_bitwise_equal(serial.gx, parallel.gx, "gemm grad_input");
  expect_bitwise_equal(serial.gw, parallel.gw, "gemm weight grad");
  expect_bitwise_equal(serial.gb, parallel.gb, "gemm bias grad");
}

TEST(Conv3dKernels, RepeatedBackwardAccumulatesIdentically) {
  // Parameter gradients accumulate across backward calls; the GEMM path
  // must seed its chains from the existing gradient exactly like the
  // reference kernel does.
  const auto spec = make_spec(2, 3, {3, 3, 3}, {1, 1, 1}, {1, 1, 1});
  auto run_twice = [&](Conv3dKernel impl) {
    Conv3dSpec s = spec;
    s.kernel_impl = impl;
    Rng rng(50);
    Conv3d conv(s, rng);
    Rng xrng(51);
    const Tensor x1 = Tensor::uniform({2, 3, 5, 5}, -1.0f, 1.0f, xrng);
    const Tensor x2 = Tensor::uniform({2, 3, 5, 5}, -1.0f, 1.0f, xrng);
    const Tensor g1 =
        Tensor::uniform(conv.output_shape(x1.shape()), -1.0f, 1.0f, xrng);
    const Tensor g2 =
        Tensor::uniform(conv.output_shape(x2.shape()), -1.0f, 1.0f, xrng);
    (void)conv.forward(x1);
    (void)conv.backward(g1);
    (void)conv.forward(x2);
    (void)conv.backward(g2);
    return std::pair<Tensor, Tensor>(conv.parameters()[0]->grad,
                                     conv.parameters()[1]->grad);
  };
  const auto direct = run_twice(Conv3dKernel::kDirect);
  const auto gemm = run_twice(Conv3dKernel::kGemm);
  expect_bitwise_equal(direct.first, gemm.first, "accumulated weight grad");
  expect_bitwise_equal(direct.second, gemm.second, "accumulated bias grad");
}

TEST(Conv3dKernels, CloneCopiesSpecAndWeightsExactly) {
  Rng rng(60);
  Conv3d conv(make_spec(2, 3, {3, 3, 3}, {1, 2, 2}, {1, 1, 1}, true,
                        Conv3dKernel::kGemm),
              rng);
  auto clone = conv.clone();
  ASSERT_NE(clone, nullptr);
  auto* copy = dynamic_cast<Conv3d*>(clone.get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->spec().kernel_impl, Conv3dKernel::kGemm);
  EXPECT_EQ(copy->spec().in_channels, conv.spec().in_channels);
  EXPECT_EQ(copy->spec().stride, conv.spec().stride);
  ASSERT_EQ(copy->parameters().size(), conv.parameters().size());
  for (std::size_t i = 0; i < conv.parameters().size(); ++i) {
    expect_bitwise_equal(conv.parameters()[i]->value,
                         copy->parameters()[i]->value, "cloned parameter");
    EXPECT_FLOAT_EQ(copy->parameters()[i]->grad.norm_linf(), 0.0f);
  }
  Rng xrng(61);
  const Tensor x = Tensor::uniform({2, 4, 6, 6}, -1.0f, 1.0f, xrng);
  expect_bitwise_equal(conv.forward(x), copy->forward(x), "cloned forward");
}

TEST(Conv3dKernels, ExtractorFeaturesBitwiseAcrossKernels) {
  // Whole-model forward equality: flipping the process default kernel on a
  // kAuto-spec'd architecture must not move a single feature bit.
  const video::VideoGeometry geometry{8, 16, 16, 3};
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = geometry;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 7);
  auto features = [&](Conv3dKernel impl) {
    KernelGuard guard(impl);
    Rng rng(70);
    auto model = models::make_extractor(models::ModelKind::kC3D, geometry, 16,
                                        rng);
    model->set_training(false);
    return model->extract(v);
  };
  expect_bitwise_equal(features(Conv3dKernel::kDirect),
                       features(Conv3dKernel::kGemm), "C3D features");
}

// ---------------------------------------------------------------------------
// End-to-end: the GEMM kernel reproduces the reference kernel's retrieval
// lists and accepted perturbations on the seed fixtures.
// ---------------------------------------------------------------------------

TEST(Conv3dKernels, EndToEndAttackMatchesReferenceKernel) {
  auto& w = duo::testing::TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[14];

  attack::Perturbation support = [&] {
    Rng rng(3);
    attack::Perturbation p =
        baselines::random_support(v.geometry(), 150, 3, rng);
    Tensor noise =
        Tensor::uniform(v.geometry().tensor_shape(), -10.0f, 10.0f, rng);
    p.magnitude() = noise * p.pixel_mask() * p.frame_mask();
    return p;
  }();

  struct E2E {
    std::vector<metrics::RetrievalList> lists;
    std::vector<double> t_history;
    Tensor v_adv;
    std::int64_t queries = 0;
  };
  auto run = [&](Conv3dKernel impl) {
    KernelGuard guard(impl);
    E2E e;
    for (const auto& q : w.dataset.test) {
      e.lists.push_back(w.victim->retrieve(q, 8));
    }
    retrieval::BlackBoxHandle handle(*w.victim);
    const auto ctx = attack::make_objective_context(handle, v, vt, 8);
    attack::SparseQueryConfig cfg;
    cfg.iter_numQ = 30;
    cfg.tau = 30.0f;
    cfg.m = 8;
    const auto result = attack::sparse_query(v, support, handle, ctx, cfg);
    e.t_history = result.t_history;
    e.v_adv = result.v_adv.data();
    e.queries = result.queries_spent;
    return e;
  };

  const E2E direct = run(Conv3dKernel::kDirect);
  const E2E gemm = run(Conv3dKernel::kGemm);
  ASSERT_EQ(direct.lists.size(), gemm.lists.size());
  for (std::size_t i = 0; i < direct.lists.size(); ++i) {
    EXPECT_EQ(direct.lists[i], gemm.lists[i]) << "retrieval list " << i;
  }
  EXPECT_EQ(direct.queries, gemm.queries);
  ASSERT_EQ(direct.t_history.size(), gemm.t_history.size());
  for (std::size_t i = 0; i < direct.t_history.size(); ++i) {
    EXPECT_EQ(direct.t_history[i], gemm.t_history[i]) << "T at step " << i;
  }
  expect_bitwise_equal(direct.v_adv, gemm.v_adv, "accepted perturbations");
}

}  // namespace
}  // namespace duo::nn
