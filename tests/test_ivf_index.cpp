#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "retrieval/index.hpp"
#include "retrieval/ivf_index.hpp"
#include "retrieval/system.hpp"
#include "video/synthetic.hpp"

namespace duo::retrieval {
namespace {

GalleryEntry entry(std::int64_t id, int label, std::vector<float> f) {
  GalleryEntry e;
  e.id = id;
  e.label = label;
  const auto dim = static_cast<std::int64_t>(f.size());
  e.feature = Tensor({dim}, std::move(f));
  return e;
}

// A clustered synthetic gallery (IVF's natural habitat): `n` points around
// `centers` Gaussian centers in `dim` dimensions, ids 0..n-1 in shuffled
// insertion order so cell content never correlates with id.
std::vector<GalleryEntry> clustered_gallery(std::size_t n, std::int64_t dim,
                                            std::size_t centers,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> mu(centers, std::vector<float>(
                                                  static_cast<std::size_t>(dim)));
  for (auto& c : mu) {
    for (auto& v : c) v = rng.uniform_f(-4.0f, 4.0f);
  }
  std::vector<std::int64_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::int64_t>(i);
  rng.shuffle(ids);
  std::vector<GalleryEntry> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = static_cast<std::size_t>(rng.uniform_index(centers));
    std::vector<float> f(static_cast<std::size_t>(dim));
    for (std::size_t j = 0; j < f.size(); ++j) {
      f[j] = mu[c][j] + rng.normal_f(0.0f, 0.3f);
    }
    out.push_back(entry(ids[i], static_cast<int>(c), std::move(f)));
  }
  return out;
}

std::vector<std::int64_t> ids_of(const std::vector<Neighbor>& list) {
  std::vector<std::int64_t> out;
  out.reserve(list.size());
  for (const auto& n : list) out.push_back(n.id);
  return out;
}

IndexConfig ivf_config(std::size_t cells, std::size_t nprobe, bool quantize,
                       std::size_t shards = 4) {
  IndexConfig cfg;
  cfg.kind = IndexKind::kIvf;
  cfg.num_nodes = shards;
  cfg.num_cells = cells;
  cfg.nprobe = nprobe;
  cfg.quantize = quantize;
  return cfg;
}

void expect_identical(const std::vector<Neighbor>& a,
                      const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_EQ(a[i].label, b[i].label) << "rank " << i;
  }
}

class IvfVsFlat : public ::testing::Test {
 protected:
  void SetUp() override {
    gallery_ = clustered_gallery(400, 8, 12, /*seed=*/5);
    flat_ = std::make_unique<RetrievalIndex>(8, 1);
    for (const auto& e : gallery_) flat_->add(e);
    Rng rng(99);
    for (int q = 0; q < 8; ++q) {
      std::vector<float> f(8);
      for (auto& v : f) v = rng.uniform_f(-4.0f, 4.0f);
      queries_.emplace_back(Tensor::Shape{8}, std::move(f));
    }
  }

  IvfIndex make_trained(const IndexConfig& cfg) {
    IvfIndex ivf(8, cfg);
    for (const auto& e : gallery_) ivf.add(e);
    ivf.finalize();
    return ivf;
  }

  std::vector<GalleryEntry> gallery_;
  std::unique_ptr<RetrievalIndex> flat_;
  std::vector<Tensor> queries_;
};

TEST_F(IvfVsFlat, NProbeAllUnquantizedIsExactlyFlat) {
  // Acceptance: nprobe = all cells → top-m identical to the exact index
  // (same ids, same order). Unquantized, the guarantee is unconditional.
  const auto ivf = make_trained(ivf_config(16, 16, /*quantize=*/false));
  ASSERT_TRUE(ivf.trained());
  for (const auto& q : queries_) {
    expect_identical(flat_->query(q, 10), ivf.query(q, 10));
  }
}

TEST_F(IvfVsFlat, NProbeAllQuantizedRerankRecoversExactTopM) {
  // Quantized scan + exact re-rank with a 4× candidate pool: on this
  // (seeded, fixed) gallery the pool always covers the true top-m, so the
  // final lists still match the exact index bit for bit.
  const auto ivf = make_trained(ivf_config(16, 16, /*quantize=*/true));
  for (const auto& q : queries_) {
    expect_identical(flat_->query(q, 10), ivf.query(q, 10));
  }
}

TEST_F(IvfVsFlat, NaNQueryMatchesFlatAndIsTotal) {
  // The headline comparator fix holds through the IVF path too: an all-NaN
  // distance column orders by id, identically to the exact index.
  const Tensor nan_q({8}, std::vector<float>(
                              8, std::numeric_limits<float>::quiet_NaN()));
  const auto ivf = make_trained(ivf_config(16, 16, /*quantize=*/false));
  const auto a = flat_->query(nan_q, 10);
  const auto b = ivf.query(nan_q, 10);
  expect_identical(a, b);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1].id, b[i].id);
}

TEST_F(IvfVsFlat, DeterministicAcrossShardAndThreadCounts) {
  // Acceptance: bitwise-deterministic across DUO_THREADS and shard counts.
  const auto reference = make_trained(ivf_config(16, 4, true, /*shards=*/1));
  for (const std::size_t shards : {2u, 8u}) {
    const auto sharded = make_trained(ivf_config(16, 4, true, shards));
    for (const auto& q : queries_) {
      const auto a = reference.query(q, 10, /*parallel=*/false);
      const auto b = sharded.query(q, 10, /*parallel=*/true);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].distance_sq, b[i].distance_sq);  // bitwise
      }
    }
  }
  // Same index, serial vs 8-worker pool: bitwise identical.
  ThreadPool pool(8);
  set_compute_pool(&pool);
  struct Restore {
    ~Restore() { set_compute_pool(nullptr); }
  } restore;
  const auto sharded = make_trained(ivf_config(16, 4, true, 4));
  for (const auto& q : queries_) {
    const auto serial = sharded.query(q, 10, false);
    const auto parallel = sharded.query(q, 10, true);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].id, parallel[i].id);
      EXPECT_EQ(serial[i].distance_sq, parallel[i].distance_sq);
    }
  }
}

TEST_F(IvfVsFlat, FewerProbesTradeRecallForScanReduction) {
  const auto ivf = make_trained(ivf_config(16, 2, true));
  std::size_t hits = 0, total = 0;
  for (const auto& q : queries_) {
    const auto exact = ids_of(flat_->query(q, 10));
    IvfQueryStats stats;
    const auto approx = ids_of(ivf.query_with_stats(q, 10, false, &stats));
    EXPECT_TRUE(stats.trained);
    EXPECT_EQ(stats.cells_probed, 2u);
    EXPECT_LT(stats.vectors_scanned, gallery_.size() / 2);
    for (const auto id : approx) {
      if (std::find(exact.begin(), exact.end(), id) != exact.end()) ++hits;
    }
    total += exact.size();
  }
  // Clustered data, 1/8 of the cells probed: recall well above chance.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.5);
}

TEST(IvfIndex, UntrainedFallsBackToExactScan) {
  IndexConfig cfg = ivf_config(8, 2, true);
  cfg.train_after = 1000;  // never auto-trains in this test
  IvfIndex ivf(2, cfg);
  RetrievalIndex flat(2, 1);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    auto e = entry(i, 0, {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)});
    ivf.add(e);
    flat.add(e);
  }
  EXPECT_FALSE(ivf.trained());
  const Tensor q({2}, std::vector<float>{0.1f, -0.2f});
  IvfQueryStats stats;
  const auto a = ivf.query_with_stats(q, 7, false, &stats);
  EXPECT_FALSE(stats.trained);
  EXPECT_EQ(stats.vectors_scanned, 30u);
  expect_identical(flat.query(q, 7), a);
}

TEST(IvfIndex, TrainAfterThresholdTriggersAutomatically) {
  IndexConfig cfg = ivf_config(4, 4, false);
  cfg.train_after = 16;
  IvfIndex ivf(1, cfg);
  for (int i = 0; i < 15; ++i) ivf.add(entry(i, 0, {static_cast<float>(i)}));
  EXPECT_FALSE(ivf.trained());
  ivf.add(entry(15, 0, {15.0f}));
  EXPECT_TRUE(ivf.trained());
  EXPECT_EQ(ivf.cell_count(), 4u);
  std::size_t stored = 0;
  for (std::size_t c = 0; c < ivf.cell_count(); ++c) stored += ivf.cell_size(c);
  EXPECT_EQ(stored, 16u);
  // Incremental adds after training land in cells, stay searchable.
  ivf.add(entry(16, 0, {16.0f}));
  EXPECT_EQ(ivf.size(), 17u);
  const auto top = ivf.query(Tensor({1}, std::vector<float>{16.0f}), 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 16);
}

TEST(IvfIndex, CellCountClampsToGallerySize) {
  IvfIndex ivf(1, ivf_config(64, 64, false));
  for (int i = 0; i < 5; ++i) ivf.add(entry(i, 0, {static_cast<float>(i)}));
  ivf.finalize();
  EXPECT_TRUE(ivf.trained());
  EXPECT_EQ(ivf.cell_count(), 5u);
  EXPECT_EQ(ivf.query(Tensor({1}, std::vector<float>{0.0f}), 10).size(), 5u);
}

TEST(IvfIndex, EdgeCasesEmptyMZeroDuplicateId) {
  IvfIndex ivf(1, ivf_config(4, 4, true));
  EXPECT_EQ(ivf.size(), 0u);
  EXPECT_TRUE(ivf.query(Tensor({1}, std::vector<float>{0.0f}), 5).empty());
  ivf.finalize();  // empty finalize is a no-op, not a crash
  EXPECT_FALSE(ivf.trained());
  ivf.add(entry(1, 0, {1.0f}));
  ivf.finalize();
  EXPECT_TRUE(ivf.query(Tensor({1}, std::vector<float>{0.0f}), 0).empty());
  EXPECT_EQ(ivf.query(Tensor({1}, std::vector<float>{0.0f}), 5).size(), 1u);
  EXPECT_THROW(ivf.add(entry(1, 0, {2.0f})), std::logic_error);
}

TEST(IvfIndex, RemoveWorksBeforeAndAfterTraining) {
  IndexConfig cfg = ivf_config(4, 4, true);
  cfg.train_after = 0;  // manual training only
  IvfIndex ivf(1, cfg);
  for (int i = 0; i < 20; ++i) ivf.add(entry(i, 0, {static_cast<float>(i)}));
  EXPECT_TRUE(ivf.remove(3));   // from the pending buffer
  EXPECT_FALSE(ivf.remove(3));
  ivf.finalize();
  EXPECT_TRUE(ivf.remove(7));   // from a trained cell
  EXPECT_FALSE(ivf.remove(99));
  EXPECT_EQ(ivf.size(), 18u);
  const auto all = ivf.query(Tensor({1}, std::vector<float>{0.0f}), 20);
  EXPECT_EQ(all.size(), 18u);
  for (const auto& n : all) {
    EXPECT_NE(n.id, 3);
    EXPECT_NE(n.id, 7);
  }
}

TEST(IvfIndex, RetrainFoldsCellsAndPendingBack) {
  IvfIndex ivf(1, ivf_config(4, 4, false));
  for (int i = 0; i < 12; ++i) ivf.add(entry(i, 0, {static_cast<float>(i)}));
  ivf.finalize();
  for (int i = 12; i < 24; ++i) ivf.add(entry(i, 0, {static_cast<float>(i)}));
  ivf.retrain();
  EXPECT_TRUE(ivf.trained());
  EXPECT_EQ(ivf.size(), 24u);
  const auto top = ivf.query(Tensor({1}, std::vector<float>{23.0f}), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 23);
}

TEST(IvfIndex, MakeIndexFactorySelectsKind) {
  IndexConfig flat_cfg;
  flat_cfg.kind = IndexKind::kFlat;
  flat_cfg.num_nodes = 3;
  const auto flat = make_index(2, flat_cfg);
  EXPECT_EQ(flat->shard_count(), 3u);
  EXPECT_NE(dynamic_cast<RetrievalIndex*>(flat.get()), nullptr);
  const auto ivf = make_index(2, ivf_config(8, 2, true, 2));
  EXPECT_EQ(ivf->shard_count(), 2u);
  EXPECT_NE(dynamic_cast<IvfIndex*>(ivf.get()), nullptr);
}

// --- RetrievalSystem routing -------------------------------------------

class IvfSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = video::DatasetSpec::hmdb51_like(21);
    spec_.num_classes = 4;
    spec_.train_per_class = 5;
    spec_.test_per_class = 2;
    spec_.geometry = {8, 16, 16, 3};
    dataset_ = video::SyntheticGenerator(spec_).generate();
  }

  std::unique_ptr<RetrievalSystem> make_system(const IndexConfig& cfg,
                                               std::uint64_t seed = 33) {
    Rng rng(seed);
    auto system = std::make_unique<RetrievalSystem>(
        models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16,
                               rng),
        cfg);
    system->add_all(dataset_.train);
    return system;
  }

  video::DatasetSpec spec_;
  video::Dataset dataset_;
};

TEST_F(IvfSystemTest, SystemRetrievalMatchesFlatAtFullProbe) {
  // End-to-end acceptance through RetrievalSystem: IVF with nprobe = all
  // cells answers exactly like the flat system, for every attack-visible
  // surface (retrieve / retrieve_detailed).
  IndexConfig flat_cfg;
  flat_cfg.num_nodes = 3;
  const auto flat = make_system(flat_cfg);
  const auto ivf = make_system(ivf_config(6, 6, /*quantize=*/false, 3));
  ASSERT_EQ(flat->gallery_size(), ivf->gallery_size());
  for (const auto& v : dataset_.test) {
    EXPECT_EQ(flat->retrieve(v, 8), ivf->retrieve(v, 8));
  }
}

TEST_F(IvfSystemTest, EvaluateMapBitwiseAcrossThreadCountsOnIvf) {
  const auto system = make_system(ivf_config(6, 3, true, 3));
  double maps[2];
  const std::size_t threads[2] = {1, 8};
  for (int t = 0; t < 2; ++t) {
    ThreadPool pool(threads[t]);
    set_compute_pool(&pool);
    maps[t] = evaluate_map(*system, dataset_.test, 5);
    set_compute_pool(nullptr);
  }
  EXPECT_EQ(maps[0], maps[1]);
}

// ISSUE 9: graceful degradation. set_degraded(true) caps the probe count at
// degraded_nprobe for the cheaper scan; clearing it restores the exact
// pre-degradation answers bit for bit. The flat index has no cheaper mode
// and must decline the request outright.
TEST_F(IvfVsFlat, DegradedModeProbesFewerCellsAndRestoresBitwise) {
  IndexConfig cfg = ivf_config(16, 4, /*quantize=*/false);
  cfg.degraded_nprobe = 1;
  IvfIndex ivf = make_trained(cfg);
  ASSERT_TRUE(ivf.trained());
  EXPECT_FALSE(ivf.degraded());

  std::vector<std::vector<Neighbor>> healthy;
  for (const auto& q : queries_) healthy.push_back(ivf.query(q, 10));

  EXPECT_TRUE(ivf.set_degraded(true));  // IVF has a cheaper mode to offer
  EXPECT_TRUE(ivf.degraded());
  for (const auto& q : queries_) {
    IvfQueryStats stats;
    (void)ivf.query_with_stats(q, 10, false, &stats);
    EXPECT_EQ(stats.cells_probed, 1u);  // nprobe 4 -> degraded_nprobe 1
  }

  EXPECT_TRUE(ivf.set_degraded(false));
  EXPECT_FALSE(ivf.degraded());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    IvfQueryStats stats;
    const auto restored = ivf.query_with_stats(queries_[i], 10, false, &stats);
    EXPECT_EQ(stats.cells_probed, 4u);
    expect_identical(healthy[i], restored);
  }

  // Flat exact scan: no reduced-effort mode, the request is declined and
  // the index never reports itself degraded.
  RetrievalIndex flat(8, 1);
  for (const auto& e : gallery_) flat.add(e);
  EXPECT_FALSE(flat.set_degraded(true));
  EXPECT_FALSE(flat.degraded());
}

TEST_F(IvfSystemTest, RemovalRoutesThroughIvfIndex) {
  const auto system = make_system(ivf_config(6, 6, true, 3));
  const auto& victim = dataset_.train[2];
  const auto count_before = system->relevant_count(victim.label());
  EXPECT_TRUE(system->remove_from_gallery(victim.id()));
  EXPECT_EQ(system->relevant_count(victim.label()), count_before - 1);
  for (const auto id : system->retrieve(victim, 20)) {
    EXPECT_NE(id, victim.id());
  }
}

}  // namespace
}  // namespace duo::retrieval
