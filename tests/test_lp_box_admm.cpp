#include <gtest/gtest.h>

#include "attack/lp_box_admm.hpp"

namespace duo::attack {
namespace {

TEST(TopkSelect, PicksMostNegativeScores) {
  Tensor scores({5}, std::vector<float>{-3.0f, 1.0f, -5.0f, 0.0f, -1.0f});
  const Tensor mask = topk_select(scores, 2);
  EXPECT_FLOAT_EQ(mask[0], 1.0f);
  EXPECT_FLOAT_EQ(mask[2], 1.0f);
  EXPECT_EQ(mask.norm_l0(), 2);
}

TEST(TopkSelect, KLargerThanSizeSelectsAll) {
  Tensor scores({3}, std::vector<float>{-1, -2, -3});
  EXPECT_EQ(topk_select(scores, 10).norm_l0(), 3);
}

TEST(TopkSelect, PreservesShape) {
  Tensor scores({2, 3}, std::vector<float>{-1, 0, -2, 3, -4, 5});
  const Tensor mask = topk_select(scores, 2);
  EXPECT_EQ(mask.shape(), scores.shape());
}

TEST(LpBoxAdmm, RelaxedSolutionStaysInBox) {
  Rng rng(1);
  const Tensor scores = Tensor::uniform({64}, -1.0f, 1.0f, rng);
  const Tensor x = lp_box_admm_relax(scores, LpBoxAdmmConfig{});
  EXPECT_GE(x.min(), 0.0f);
  EXPECT_LE(x.max(), 1.0f);
}

TEST(LpBoxAdmm, PrefersNegativeScores) {
  // Strongly negative scores (big loss reduction) must end near 1, strongly
  // positive near 0.
  Tensor scores({6}, std::vector<float>{-10, -8, -6, 6, 8, 10});
  const Tensor x = lp_box_admm_relax(scores, LpBoxAdmmConfig{});
  for (int i = 0; i < 3; ++i) {
    for (int j = 3; j < 6; ++j) {
      EXPECT_GT(x[i], x[j]);
    }
  }
}

TEST(LpBoxAdmm, SelectEnforcesExactBudget) {
  Rng rng(2);
  const Tensor scores = Tensor::uniform({128}, -1.0f, 1.0f, rng);
  const Tensor mask = lp_box_admm_select(scores, 17, LpBoxAdmmConfig{});
  EXPECT_EQ(mask.norm_l0(), 17);
  for (std::int64_t i = 0; i < mask.size(); ++i) {
    EXPECT_TRUE(mask[i] == 0.0f || mask[i] == 1.0f);
  }
}

TEST(LpBoxAdmm, AgreesWithTopkOnWellSeparatedScores) {
  // With a clear gap between "good" and "bad" elements both selectors must
  // make the same choice — the ADMM relaxation only matters near ties.
  Tensor scores({8}, std::vector<float>{-9, -8, -7, -6, 4, 5, 6, 7});
  const Tensor admm = lp_box_admm_select(scores, 4, LpBoxAdmmConfig{});
  const Tensor topk = topk_select(scores, 4);
  EXPECT_TRUE(admm.allclose(topk));
}

TEST(LpBoxAdmm, DeterministicAcrossRuns) {
  Rng rng(3);
  const Tensor scores = Tensor::uniform({50}, -1.0f, 1.0f, rng);
  const Tensor a = lp_box_admm_select(scores, 10, LpBoxAdmmConfig{});
  const Tensor b = lp_box_admm_select(scores, 10, LpBoxAdmmConfig{});
  EXPECT_TRUE(a.allclose(b));
}

TEST(LpBoxAdmm, EmptyScoresThrow) {
  EXPECT_THROW(lp_box_admm_relax(Tensor(), LpBoxAdmmConfig{}),
               std::logic_error);
}

TEST(LpBoxAdmm, ZeroBudgetSelectsNothing) {
  Rng rng(4);
  const Tensor scores = Tensor::uniform({16}, -1.0f, 1.0f, rng);
  EXPECT_EQ(lp_box_admm_select(scores, 0, LpBoxAdmmConfig{}).norm_l0(), 0);
}

}  // namespace
}  // namespace duo::attack
