#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"

namespace duo::nn {
namespace {

TEST(Lstm, OutputShapeIsSequenceOfHidden) {
  Rng rng(1);
  Lstm lstm(3, 5, rng);
  const Tensor x = Tensor::uniform({7, 3}, -1.0f, 1.0f, rng);
  const Tensor out = lstm.forward(x);
  EXPECT_EQ(out.shape(), (Tensor::Shape{7, 5}));
}

TEST(Lstm, CloneCopiesParametersExactly) {
  Rng rng(9);
  Lstm lstm(3, 4, rng);
  // clone() constructs the copy uninitialized (no wasted xavier draws) and
  // copies values over; the result must reproduce the original bitwise.
  auto clone = lstm.clone();
  ASSERT_NE(clone, nullptr);
  auto* copy = dynamic_cast<Lstm*>(clone.get());
  ASSERT_NE(copy, nullptr);
  const auto orig_params = lstm.parameters();
  const auto copy_params = copy->parameters();
  ASSERT_EQ(orig_params.size(), copy_params.size());
  for (std::size_t i = 0; i < orig_params.size(); ++i) {
    const Tensor& a = orig_params[i]->value;
    const Tensor& b = copy_params[i]->value;
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t j = 0; j < a.size(); ++j) ASSERT_EQ(a[j], b[j]);
    EXPECT_FLOAT_EQ(copy_params[i]->grad.norm_linf(), 0.0f);
  }
  Rng xrng(10);
  const Tensor x = Tensor::uniform({5, 3}, -1.0f, 1.0f, xrng);
  const Tensor out_a = lstm.forward(x);
  const Tensor out_b = copy->forward(x);
  for (std::int64_t j = 0; j < out_a.size(); ++j) {
    ASSERT_EQ(out_a[j], out_b[j]);
  }
}

TEST(Lstm, RejectsWrongInputWidth) {
  Rng rng(2);
  Lstm lstm(3, 4, rng);
  EXPECT_THROW(lstm.forward(Tensor({5, 2})), std::logic_error);
}

TEST(Lstm, InputGradientMatchesNumerical) {
  Rng rng(3);
  Lstm lstm(2, 3, rng);
  const Tensor x = Tensor::uniform({4, 2}, -1.0f, 1.0f, rng);
  const Tensor out = lstm.forward(x);
  Rng wrng(4);
  const Tensor weights = Tensor::uniform(out.shape(), -1.0f, 1.0f, wrng);

  const Tensor analytic = lstm.backward(weights);
  const Tensor numerical = numerical_gradient(
      [&](const Tensor& probe) { return lstm.forward(probe).dot(weights); },
      x);
  EXPECT_LT(gradient_max_relative_error(analytic, numerical), 3e-2);
}

TEST(Lstm, ParameterGradientsMatchNumerical) {
  Rng rng(5);
  Lstm lstm(2, 2, rng);
  const Tensor x = Tensor::uniform({3, 2}, -1.0f, 1.0f, rng);
  const Tensor out = lstm.forward(x);
  Rng wrng(6);
  const Tensor weights = Tensor::uniform(out.shape(), -1.0f, 1.0f, wrng);

  lstm.zero_grad();
  (void)lstm.forward(x);
  (void)lstm.backward(weights);

  for (auto* param : lstm.parameters()) {
    const Tensor analytic = param->grad;
    const Tensor numerical = numerical_gradient(
        [&](const Tensor& probe) {
          const Tensor saved = param->value;
          param->value = probe;
          const double loss = lstm.forward(x).dot(weights);
          param->value = saved;
          return loss;
        },
        param->value);
    EXPECT_LT(gradient_max_relative_error(analytic, numerical), 3e-2);
  }
}

TEST(Lstm, StatePropagatesAcrossTime) {
  // The first timestep's input must influence the last timestep's output.
  Rng rng(7);
  Lstm lstm(1, 4, rng);
  Tensor x({6, 1}, 0.1f);
  const Tensor base = lstm.forward(x);
  x.at(0, 0) = 2.0f;
  const Tensor bumped = lstm.forward(x);
  double diff = 0.0;
  for (std::int64_t h = 0; h < 4; ++h) {
    diff += std::abs(base.at(5, h) - bumped.at(5, h));
  }
  EXPECT_GT(diff, 1e-5);
}

TEST(Lstm, LearnsToMemorizeFirstInput) {
  // Task: output at final step should equal the first input value; trains
  // through full BPTT.
  Rng rng(8);
  Lstm lstm(1, 8, rng);
  Adam opt(lstm.parameters(), 0.02f);
  double loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    const float value = rng.uniform_f(-1.0f, 1.0f);
    Tensor x({5, 1});
    x.at(0, 0) = value;
    const Tensor out = lstm.forward(x);
    const float pred = out.at(4, 0);
    loss = (pred - value) * (pred - value);

    Tensor grad(out.shape());
    grad.at(4, 0) = 2.0f * (pred - value);
    opt.zero_grad();
    (void)lstm.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss, 0.05);
}

TEST(Lstm, BackwardBeforeForwardThrows) {
  Rng rng(9);
  Lstm lstm(2, 2, rng);
  EXPECT_THROW(lstm.backward(Tensor({3, 2})), std::logic_error);
}

}  // namespace
}  // namespace duo::nn
