#include <gtest/gtest.h>

#include "metrics/metrics.hpp"

namespace duo::metrics {
namespace {

TEST(AveragePrecision, PerfectRanking) {
  EXPECT_DOUBLE_EQ(average_precision({true, true, true}, 3), 1.0);
}

TEST(AveragePrecision, NothingRelevant) {
  EXPECT_DOUBLE_EQ(average_precision({false, false}, 3), 0.0);
}

TEST(AveragePrecision, KnownMixedCase) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(average_precision({true, false, true}, 2), (1.0 + 2.0 / 3.0) / 2,
              1e-12);
}

TEST(AveragePrecision, DenominatorCappedByListLength) {
  // Only 2 retrieved but 10 relevant exist: denominator is min(10, 2).
  EXPECT_DOUBLE_EQ(average_precision({true, true}, 10), 1.0);
}

TEST(AveragePrecision, EmptyInputs) {
  EXPECT_DOUBLE_EQ(average_precision({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(average_precision({true}, 0), 0.0);
}

TEST(PrecisionAt, TopOverlapRatio) {
  const RetrievalList a{1, 2, 3, 4};
  const RetrievalList b{2, 1, 9, 9};
  EXPECT_DOUBLE_EQ(precision_at(a, b, 1), 0.0);  // {1} vs {2}
  EXPECT_DOUBLE_EQ(precision_at(a, b, 2), 1.0);  // {1,2} vs {2,1}
  EXPECT_DOUBLE_EQ(precision_at(a, b, 4), 0.5);
}

TEST(PrecisionAt, OutOfRangeThrows) {
  const RetrievalList a{1, 2};
  EXPECT_THROW(precision_at(a, a, 0), std::logic_error);
  EXPECT_THROW(precision_at(a, a, 3), std::logic_error);
}

TEST(ApAtM, IdenticalListsGiveOne) {
  const RetrievalList a{5, 3, 8, 1};
  EXPECT_DOUBLE_EQ(ap_at_m(a, a), 1.0);
}

TEST(ApAtM, DisjointListsGiveZero) {
  EXPECT_DOUBLE_EQ(ap_at_m({1, 2, 3}, {4, 5, 6}), 0.0);
}

TEST(ApAtM, OrderInsensitiveOverlapAtFullDepth) {
  // Same set, reversed order: prec_m = 1 but earlier prec_i < 1.
  const double v = ap_at_m({1, 2, 3, 4}, {4, 3, 2, 1});
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(ApAtM, EmptyListGivesZero) {
  EXPECT_DOUBLE_EQ(ap_at_m({}, {1, 2}), 0.0);
}

TEST(ApAtM, UsesShorterLength) {
  // a truncated to b's length.
  EXPECT_DOUBLE_EQ(ap_at_m({1, 2, 3, 4, 5}, {1, 2}), 1.0);
}

TEST(Sparsity, CountsNonzeroElements) {
  Tensor phi({2, 2}, std::vector<float>{0.0f, 1.5f, 0.0f, -2.0f});
  EXPECT_EQ(sparsity(phi), 2);
}

TEST(Sparsity, EpsilonFiltersNumericalDust) {
  Tensor phi({2}, std::vector<float>{1e-8f, 0.4f});
  EXPECT_EQ(sparsity(phi), 1);
}

TEST(PerturbedFrames, CountsFramesWithAnyPerturbation) {
  // 3 frames of 4 elements; frames 0 and 2 perturbed.
  Tensor phi({12});
  phi[1] = 1.0f;
  phi[9] = -3.0f;
  EXPECT_EQ(perturbed_frames(phi, 4), 2);
}

TEST(PerturbedFrames, RejectsBadFrameSize) {
  Tensor phi({10});
  EXPECT_THROW(perturbed_frames(phi, 3), std::logic_error);
}

TEST(PScore, MeanAbsolutePerturbation) {
  Tensor phi({4}, std::vector<float>{10.0f, -10.0f, 10.0f, -10.0f});
  EXPECT_DOUBLE_EQ(pscore(phi), 10.0);
}

TEST(PScore, DenseSaturatedAttackScoresLikePaper) {
  // TIMI rows in Table II: every element at magnitude 10 → PScore 10.
  Tensor phi({100}, 10.0f);
  EXPECT_DOUBLE_EQ(pscore(phi), 10.0);
}

TEST(PScore, EmptyTensor) { EXPECT_DOUBLE_EQ(pscore(Tensor()), 0.0); }

TEST(NdcgSimilarity, IdenticalListsGiveOne) {
  const RetrievalList a{7, 2, 9};
  EXPECT_NEAR(ndcg_similarity(a, a), 1.0, 1e-12);
}

TEST(NdcgSimilarity, DisjointListsGiveZero) {
  EXPECT_DOUBLE_EQ(ndcg_similarity({1, 2}, {3, 4}), 0.0);
}

TEST(NdcgSimilarity, EarlyAgreementBeatsLateAgreement) {
  const RetrievalList reference{1, 2, 3, 4, 5};
  // Same single co-occurring item at rank 0 vs rank 4.
  const double early = ndcg_similarity({1, 9, 8, 7, 6}, reference);
  const double late = ndcg_similarity({9, 8, 7, 6, 1}, reference);
  EXPECT_GT(early, late);
}

TEST(NdcgSimilarity, MoreOverlapScoresHigher) {
  const RetrievalList reference{1, 2, 3, 4};
  const double two = ndcg_similarity({1, 2, 8, 9}, reference);
  const double three = ndcg_similarity({1, 2, 3, 9}, reference);
  EXPECT_GT(three, two);
}

TEST(NdcgSimilarity, BoundedInUnitInterval) {
  const RetrievalList a{1, 2, 3};
  const RetrievalList b{3, 1, 2};
  const double s = ndcg_similarity(a, b);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(NdcgSimilarity, EmptyLists) {
  EXPECT_DOUBLE_EQ(ndcg_similarity({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(ndcg_similarity({1}, {}), 0.0);
}

}  // namespace
}  // namespace duo::metrics
