#include <gtest/gtest.h>

#include <memory>

#include "models/feature_extractor.hpp"
#include "video/synthetic.hpp"

namespace duo::models {
namespace {

video::VideoGeometry test_geometry() { return {8, 16, 16, 3}; }

video::Video test_video(std::uint64_t seed = 1) {
  auto spec = video::DatasetSpec::hmdb51_like(seed);
  spec.geometry = test_geometry();
  video::SyntheticGenerator gen(spec);
  return gen.make_video(0, 0, seed);
}

class AllModels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(AllModels, ProducesFeatureOfRequestedDim) {
  Rng rng(3);
  auto model = make_extractor(GetParam(), test_geometry(), 32, rng);
  model->set_training(false);
  const Tensor f = model->extract(test_video());
  EXPECT_EQ(f.size(), 32);
  for (std::int64_t i = 0; i < f.size(); ++i) {
    EXPECT_TRUE(std::isfinite(f[i]));
  }
}

TEST_P(AllModels, DeterministicForward) {
  Rng rng(4);
  auto model = make_extractor(GetParam(), test_geometry(), 16, rng);
  model->set_training(false);
  const video::Video v = test_video(2);
  const Tensor a = model->extract(v);
  const Tensor b = model->extract(v);
  EXPECT_TRUE(a.allclose(b));
}

TEST_P(AllModels, InputGradientFlowsToEveryFrame) {
  Rng rng(5);
  auto model = make_extractor(GetParam(), test_geometry(), 16, rng);
  model->set_training(false);
  const video::Video v = test_video(3);
  const Tensor input = v.to_model_input();
  const Tensor f = model->extract_model_input(input);
  Rng wrng(6);
  const Tensor weights = Tensor::uniform(f.shape(), -1.0f, 1.0f, wrng);
  const Tensor grad = model->backward_to_input(weights);
  ASSERT_EQ(grad.shape(), input.shape());

  const auto& g = test_geometry();
  // Every frame should receive some gradient (models see all frames).
  for (std::int64_t t = 0; t < g.frames; ++t) {
    double mass = 0.0;
    for (std::int64_t c = 0; c < g.channels; ++c) {
      for (std::int64_t y = 0; y < g.height; ++y) {
        for (std::int64_t x = 0; x < g.width; ++x) {
          mass += std::abs(grad.at(c, t, y, x));
        }
      }
    }
    EXPECT_GT(mass, 0.0) << model_kind_name(GetParam()) << " frame " << t;
  }
}

TEST_P(AllModels, HasTrainableParameters) {
  Rng rng(7);
  auto model = make_extractor(GetParam(), test_geometry(), 16, rng);
  EXPECT_GT(model->parameter_count(), 100);
}

TEST_P(AllModels, DifferentSeedsGiveDifferentFeatures) {
  Rng rng1(8), rng2(9);
  auto m1 = make_extractor(GetParam(), test_geometry(), 16, rng1);
  auto m2 = make_extractor(GetParam(), test_geometry(), 16, rng2);
  m1->set_training(false);
  m2->set_training(false);
  const video::Video v = test_video(4);
  EXPECT_FALSE(m1->extract(v).allclose(m2->extract(v)));
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, AllModels,
    ::testing::Values(ModelKind::kI3D, ModelKind::kTPN, ModelKind::kSlowFast,
                      ModelKind::kResNet34, ModelKind::kC3D,
                      ModelKind::kResNet18, ModelKind::kLstmNet),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return model_kind_name(info.param);
    });

TEST(ModelFactory, NamesMatchPaper) {
  EXPECT_STREQ(model_kind_name(ModelKind::kI3D), "I3D");
  EXPECT_STREQ(model_kind_name(ModelKind::kTPN), "TPN");
  EXPECT_STREQ(model_kind_name(ModelKind::kSlowFast), "SlowFast");
  EXPECT_STREQ(model_kind_name(ModelKind::kResNet34), "Resnet34");
  EXPECT_STREQ(model_kind_name(ModelKind::kC3D), "C3D");
  EXPECT_STREQ(model_kind_name(ModelKind::kResNet18), "Resnet18");
}

TEST(ModelFactory, VictimAndSurrogateKindLists) {
  EXPECT_EQ(victim_model_kinds().size(), 4u);
  EXPECT_EQ(surrogate_model_kinds().size(), 2u);
}

TEST(ModelFactory, ResNet34DeeperThanResNet18) {
  Rng rng(10);
  auto r18 = make_extractor(ModelKind::kResNet18, test_geometry(), 16, rng);
  auto r34 = make_extractor(ModelKind::kResNet34, test_geometry(), 16, rng);
  EXPECT_GT(r34->parameter_count(), r18->parameter_count());
}

TEST(ModelFactory, SupportsAllPaperFeatureDims) {
  // Fig. 4 sweeps output feature sizes {256, 512, 768, 1024}; geometry
  // here is miniature but the head must scale to any of them.
  Rng rng(11);
  for (const std::int64_t dim : {256, 512, 768, 1024}) {
    auto model = make_extractor(ModelKind::kC3D, test_geometry(), dim, rng);
    EXPECT_EQ(model->feature_dim(), dim);
  }
}

}  // namespace
}  // namespace duo::models
