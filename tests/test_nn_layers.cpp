// Gradient checks for every layer: analytic backward vs central differences.

#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.hpp"
#include "nn/compose.hpp"
#include "nn/conv3d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/pool3d.hpp"
#include "nn/residual.hpp"

namespace duo::nn {
namespace {

// Scalar objective: weighted sum of the module output, with fixed weights so
// the gradient is non-trivial in every coordinate.
Tensor loss_weights(const Tensor& out, Rng& rng) {
  return Tensor::uniform(out.shape(), -1.0f, 1.0f, rng);
}

double weighted_sum(const Tensor& out, const Tensor& weights) {
  return out.dot(weights);
}

// Checks d(weightsᵀ·f(x))/dx for module f at a random x.
void check_input_gradient(Module& module, const Tensor::Shape& in_shape,
                          double tolerance = 2e-2) {
  Rng rng(42);
  const Tensor x = Tensor::uniform(in_shape, -1.0f, 1.0f, rng);
  const Tensor out = module.forward(x);
  Rng wrng(7);
  const Tensor weights = loss_weights(out, wrng);

  const Tensor analytic = module.backward(weights);
  const Tensor numerical = numerical_gradient(
      [&](const Tensor& probe) {
        return weighted_sum(module.forward(probe), weights);
      },
      x);
  EXPECT_LT(gradient_max_relative_error(analytic, numerical), tolerance)
      << module.name();
}

// Checks parameter gradients for each parameter of the module.
void check_parameter_gradients(Module& module, const Tensor::Shape& in_shape,
                               double tolerance = 2e-2) {
  Rng rng(43);
  const Tensor x = Tensor::uniform(in_shape, -1.0f, 1.0f, rng);
  const Tensor out = module.forward(x);
  Rng wrng(8);
  const Tensor weights = loss_weights(out, wrng);

  module.zero_grad();
  (void)module.forward(x);
  (void)module.backward(weights);

  for (auto* param : module.parameters()) {
    const Tensor analytic = param->grad;
    const Tensor numerical = numerical_gradient(
        [&](const Tensor& probe) {
          const Tensor saved = param->value;
          param->value = probe;
          const double loss = weighted_sum(module.forward(x), weights);
          param->value = saved;
          return loss;
        },
        param->value);
    EXPECT_LT(gradient_max_relative_error(analytic, numerical), tolerance)
        << module.name() << " parameter of size " << param->size();
  }
}

TEST(Linear, InputGradientMatchesNumerical) {
  Rng rng(1);
  Linear layer(6, 4, rng);
  check_input_gradient(layer, {6});
}

TEST(Linear, ParameterGradientsMatchNumerical) {
  Rng rng(2);
  Linear layer(5, 3, rng);
  check_parameter_gradients(layer, {5});
}

TEST(Linear, RejectsWrongInputSize) {
  Rng rng(3);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({3})), std::logic_error);
}

TEST(ReLU, GradientMasksNegativeInputs) {
  ReLU relu;
  Tensor x({4}, std::vector<float>{-1.0f, 2.0f, -3.0f, 4.0f});
  (void)relu.forward(x);
  const Tensor g = relu.backward(Tensor::ones({4}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
  EXPECT_FLOAT_EQ(g[3], 1.0f);
}

TEST(Tanh, InputGradientMatchesNumerical) {
  Tanh layer;
  check_input_gradient(layer, {8});
}

TEST(Sigmoid, InputGradientMatchesNumerical) {
  Sigmoid layer;
  check_input_gradient(layer, {8});
}

TEST(Flatten, RoundTripsShape) {
  Flatten layer;
  Rng rng(4);
  const Tensor x = Tensor::uniform({2, 3, 4}, -1.0f, 1.0f, rng);
  const Tensor out = layer.forward(x);
  EXPECT_EQ(out.shape(), (Tensor::Shape{24}));
  const Tensor g = layer.backward(Tensor::ones({24}));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Conv3d, InputGradientMatchesNumerical) {
  Rng rng(5);
  Conv3dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = {3, 3, 3};
  spec.stride = {1, 1, 1};
  spec.padding = {1, 1, 1};
  Conv3d layer(spec, rng);
  check_input_gradient(layer, {2, 4, 5, 5});
}

TEST(Conv3d, ParameterGradientsMatchNumerical) {
  Rng rng(6);
  Conv3dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 2;
  spec.kernel = {2, 3, 3};
  spec.stride = {1, 2, 2};
  spec.padding = {0, 1, 1};
  Conv3d layer(spec, rng);
  check_parameter_gradients(layer, {2, 3, 5, 5});
}

TEST(Conv3d, StridedOutputShape) {
  Rng rng(7);
  Conv3dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  spec.kernel = {3, 3, 3};
  spec.stride = {1, 2, 2};
  spec.padding = {1, 1, 1};
  Conv3d layer(spec, rng);
  const auto out = layer.output_shape({3, 16, 24, 24});
  EXPECT_EQ(out, (Tensor::Shape{8, 16, 12, 12}));
}

TEST(Conv3d, TemporalKernelOneIsPerFrame2d) {
  // With kt = 1, perturbing frame t must not affect other output frames.
  Rng rng(8);
  Conv3dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = {1, 3, 3};
  spec.stride = {1, 1, 1};
  spec.padding = {0, 1, 1};
  Conv3d layer(spec, rng);
  Tensor x = Tensor::uniform({1, 3, 4, 4}, -1.0f, 1.0f, rng);
  const Tensor base = layer.forward(x);
  x.at(0, 1, 2, 2) += 0.5f;  // perturb frame 1 only
  const Tensor bumped = layer.forward(x);
  for (std::int64_t h = 0; h < 4; ++h) {
    for (std::int64_t w = 0; w < 4; ++w) {
      EXPECT_FLOAT_EQ(base.at(0, 0, h, w), bumped.at(0, 0, h, w));
      EXPECT_FLOAT_EQ(base.at(0, 2, h, w), bumped.at(0, 2, h, w));
    }
  }
}

TEST(MaxPool3d, InputGradientMatchesNumerical) {
  MaxPool3d layer(std::array<std::int64_t, 3>{2, 2, 2});
  check_input_gradient(layer, {2, 4, 4, 4});
}

TEST(MaxPool3d, ForwardPicksWindowMax) {
  MaxPool3d layer(std::array<std::int64_t, 3>{1, 2, 2});
  Tensor x({1, 1, 2, 2}, std::vector<float>{1.0f, 5.0f, -2.0f, 3.0f});
  const Tensor out = layer.forward(x);
  EXPECT_EQ(out.size(), 1);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
}

TEST(AvgPool3d, InputGradientMatchesNumerical) {
  AvgPool3d layer(std::array<std::int64_t, 3>{2, 2, 2});
  check_input_gradient(layer, {2, 4, 4, 4});
}

TEST(AvgPool3d, ForwardAveragesWindow) {
  AvgPool3d layer(std::array<std::int64_t, 3>{1, 2, 2});
  Tensor x({1, 1, 2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f, 6.0f});
  const Tensor out = layer.forward(x);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(GlobalAvgPool, InputGradientMatchesNumerical) {
  GlobalAvgPool layer;
  check_input_gradient(layer, {3, 2, 3, 3});
}

TEST(InstanceNorm3d, InputGradientMatchesNumerical) {
  InstanceNorm3d layer(2);
  check_input_gradient(layer, {2, 2, 3, 3}, 3e-2);
}

TEST(InstanceNorm3d, ParameterGradientsMatchNumerical) {
  InstanceNorm3d layer(2);
  check_parameter_gradients(layer, {2, 2, 3, 3}, 3e-2);
}

TEST(InstanceNorm3d, NormalizesPerChannel) {
  InstanceNorm3d layer(1);
  Rng rng(9);
  const Tensor x = Tensor::uniform({1, 2, 3, 3}, 5.0f, 9.0f, rng);
  const Tensor out = layer.forward(x);
  EXPECT_NEAR(out.mean(), 0.0, 1e-5);
  double var = 0.0;
  for (std::int64_t i = 0; i < out.size(); ++i) var += out[i] * out[i];
  var /= static_cast<double>(out.size());
  EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(Residual, IdentityShortcutGradient) {
  Rng rng(10);
  Conv3dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 2;
  spec.kernel = {1, 3, 3};
  spec.stride = {1, 1, 1};
  spec.padding = {0, 1, 1};
  Residual layer(std::make_unique<Conv3d>(spec, rng));
  check_input_gradient(layer, {2, 2, 4, 4});
}

TEST(Residual, ProjectionShortcutGradient) {
  Rng rng(11);
  Conv3dSpec body;
  body.in_channels = 2;
  body.out_channels = 3;
  body.kernel = {1, 3, 3};
  body.stride = {1, 1, 1};
  body.padding = {0, 1, 1};
  Conv3dSpec proj;
  proj.in_channels = 2;
  proj.out_channels = 3;
  proj.kernel = {1, 1, 1};
  proj.stride = {1, 1, 1};
  proj.padding = {0, 0, 0};
  Residual layer(std::make_unique<Conv3d>(body, rng),
                 std::make_unique<Conv3d>(proj, rng));
  check_input_gradient(layer, {2, 2, 4, 4});
  check_parameter_gradients(layer, {2, 2, 4, 4});
}

TEST(Parallel, ConcatenatesChannelsAndSplitsGradient) {
  Rng rng(12);
  auto parallel = std::make_unique<Parallel>();
  Conv3dSpec a;
  a.in_channels = 2;
  a.out_channels = 2;
  a.kernel = {1, 1, 1};
  a.stride = {1, 1, 1};
  a.padding = {0, 0, 0};
  Conv3dSpec b = a;
  b.out_channels = 3;
  parallel->add(std::make_unique<Conv3d>(a, rng));
  parallel->add(std::make_unique<Conv3d>(b, rng));
  const Tensor x = Tensor::uniform({2, 2, 3, 3}, -1.0f, 1.0f, rng);
  const Tensor out = parallel->forward(x);
  EXPECT_EQ(out.shape(), (Tensor::Shape{5, 2, 3, 3}));
  check_input_gradient(*parallel, {2, 2, 3, 3});
}

TEST(SpatialAvgPool, InputGradientMatchesNumerical) {
  SpatialAvgPool layer;
  check_input_gradient(layer, {3, 2, 3, 3});
}

TEST(SpatialAvgPool, OutputLayoutIsTimeMajor) {
  SpatialAvgPool layer;
  Tensor x({1, 2, 1, 2}, std::vector<float>{1.0f, 3.0f, 5.0f, 7.0f});
  const Tensor out = layer.forward(x);
  EXPECT_EQ(out.shape(), (Tensor::Shape{2, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 6.0f);
}

TEST(TemporalMean, InputGradientMatchesNumerical) {
  TemporalMean layer;
  check_input_gradient(layer, {4, 5});
}

TEST(Sequential, ComposesForwardAndBackward) {
  Rng rng(13);
  Sequential seq;
  seq.emplace<Linear>(4, 6, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(6, 2, rng);
  check_input_gradient(seq, {4});
  check_parameter_gradients(seq, {4});
  EXPECT_EQ(seq.child_count(), 3u);
  EXPECT_GT(seq.parameter_count(), 0);
}

}  // namespace
}  // namespace duo::nn
