// Metric-loss correctness: gradients vs finite differences, plus the
// semantic properties each loss must have (zero when margins are satisfied,
// pulling same-class features together, etc.).

#include <gtest/gtest.h>

#include <memory>

#include "nn/gradcheck.hpp"
#include "nn/losses.hpp"

namespace duo::nn {
namespace {

// Finite-difference check for a BatchMetricLoss's feature gradients.
void check_loss_gradient(BatchMetricLoss& loss, const Tensor& features,
                         const std::vector<int>& labels,
                         double tolerance = 3e-2) {
  const BatchLossResult result = loss.compute(features, labels);
  const Tensor numerical = numerical_gradient(
      [&](const Tensor& probe) { return loss.compute(probe, labels).loss; },
      features);
  EXPECT_LT(gradient_max_relative_error(result.feature_grads, numerical),
            tolerance)
      << loss.name();
}

Tensor random_features(std::int64_t b, std::int64_t d, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform({b, d}, -1.0f, 1.0f, rng);
}

TEST(TripletMarginLoss, GradientMatchesNumerical) {
  TripletMarginLoss loss(0.5f);
  const Tensor f = random_features(6, 4, 1);
  check_loss_gradient(loss, f, {0, 0, 1, 1, 2, 2});
}

TEST(TripletMarginLoss, ZeroWhenWellSeparated) {
  TripletMarginLoss loss(0.1f);
  // Two tight clusters far apart: every triplet satisfied.
  Tensor f({4, 2}, std::vector<float>{0, 0, 0.01f, 0, 10, 10, 10, 10.01f});
  const auto result = loss.compute(f, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
  EXPECT_EQ(result.feature_grads.norm_l0(), 0);
}

TEST(TripletMarginLoss, PositiveWhenViolated) {
  TripletMarginLoss loss(0.2f);
  // Anchor closer to the negative than the positive.
  Tensor f({3, 1}, std::vector<float>{0.0f, 5.0f, 0.1f});
  const auto result = loss.compute(f, {0, 0, 1});
  EXPECT_GT(result.loss, 0.0);
}

TEST(TripletMarginLoss, NoSameClassPairsMeansZero) {
  TripletMarginLoss loss;
  const Tensor f = random_features(3, 2, 2);
  const auto result = loss.compute(f, {0, 1, 2});
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
}

TEST(ArcFaceLoss, GradientMatchesNumerical) {
  Rng rng(3);
  ArcFaceLoss loss(4, 3, rng);
  const Tensor f = random_features(4, 4, 4);
  check_loss_gradient(loss, f, {0, 1, 2, 0}, 5e-2);
}

TEST(ArcFaceLoss, LossDecreasesWhenFeatureAlignsWithClassWeight) {
  Rng rng(5);
  ArcFaceLoss loss(8, 4, rng);
  const Tensor f = random_features(2, 8, 6);
  const auto before = loss.compute(f, {1, 2});
  // Take a gradient step on the features; loss must drop.
  Tensor stepped = f;
  stepped.axpy(-0.5f, before.feature_grads);
  const auto after = loss.compute(stepped, {1, 2});
  EXPECT_LT(after.loss, before.loss);
}

TEST(ArcFaceLoss, HasTrainableParameters) {
  Rng rng(7);
  ArcFaceLoss loss(4, 5, rng);
  const auto params = loss.parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0]->size(), 20);
}

TEST(ArcFaceLoss, LabelOutOfRangeThrows) {
  Rng rng(8);
  ArcFaceLoss loss(4, 3, rng);
  const Tensor f = random_features(1, 4, 9);
  EXPECT_THROW(loss.compute(f, {5}), std::logic_error);
}

TEST(LiftedStructureLoss, GradientMatchesNumerical) {
  LiftedStructureLoss loss(1.0f);
  const Tensor f = random_features(5, 3, 10);
  check_loss_gradient(loss, f, {0, 0, 1, 1, 0}, 5e-2);
}

TEST(LiftedStructureLoss, ZeroWithoutPositivePairs) {
  LiftedStructureLoss loss;
  const Tensor f = random_features(3, 2, 11);
  EXPECT_DOUBLE_EQ(loss.compute(f, {0, 1, 2}).loss, 0.0);
}

TEST(LiftedStructureLoss, StepReducesLoss) {
  LiftedStructureLoss loss(1.0f);
  Tensor f = random_features(6, 4, 12);
  const std::vector<int> labels{0, 0, 1, 1, 2, 2};
  const auto before = loss.compute(f, labels);
  ASSERT_GT(before.loss, 0.0);
  f.axpy(-0.05f, before.feature_grads);
  const auto after = loss.compute(f, labels);
  EXPECT_LT(after.loss, before.loss);
}

TEST(AngularLoss, GradientMatchesNumerical) {
  AngularLoss loss(40.0f);
  const Tensor f = random_features(5, 3, 13);
  check_loss_gradient(loss, f, {0, 0, 1, 1, 2}, 5e-2);
}

TEST(AngularLoss, ZeroForTightClusterFarNegative) {
  AngularLoss loss(40.0f);
  Tensor f({3, 2}, std::vector<float>{0, 0, 0.01f, 0.01f, 50, 50});
  EXPECT_DOUBLE_EQ(loss.compute(f, {0, 0, 1}).loss, 0.0);
}

TEST(VictimLossFactory, ProducesAllThreeKinds) {
  Rng rng(14);
  for (const auto kind : {VictimLossKind::kArcFace, VictimLossKind::kLifted,
                          VictimLossKind::kAngular}) {
    auto loss = make_victim_loss(kind, 8, 4, rng);
    ASSERT_NE(loss, nullptr);
    const Tensor f = random_features(4, 8, 15);
    const auto result = loss->compute(f, {0, 0, 1, 1});
    EXPECT_TRUE(std::isfinite(result.loss)) << victim_loss_name(kind);
    EXPECT_EQ(result.feature_grads.shape(), (Tensor::Shape{4, 8}));
  }
}

TEST(VictimLossFactory, NamesMatchPaper) {
  EXPECT_STREQ(victim_loss_name(VictimLossKind::kArcFace), "ArcFaceLoss");
  EXPECT_STREQ(victim_loss_name(VictimLossKind::kLifted), "LiftedLoss");
  EXPECT_STREQ(victim_loss_name(VictimLossKind::kAngular), "AngularLoss");
}

TEST(RankedTripletLoss, SatisfiedMarginGivesZero) {
  Tensor anchor({2}, std::vector<float>{0, 0});
  Tensor closer({2}, std::vector<float>{0.1f, 0});
  Tensor farther({2}, std::vector<float>{5, 5});
  const auto result = ranked_triplet_loss(anchor, closer, farther, 0.2f);
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
  EXPECT_EQ(result.anchor_grad.norm_l0(), 0);
}

TEST(RankedTripletLoss, ViolationGradientsMatchNumerical) {
  Rng rng(16);
  const Tensor anchor = Tensor::uniform({3}, -1, 1, rng);
  const Tensor closer = Tensor::uniform({3}, 4, 5, rng);   // far: violates
  const Tensor farther = Tensor::uniform({3}, -1, 1, rng);  // near
  const auto result = ranked_triplet_loss(anchor, closer, farther, 0.2f);
  ASSERT_GT(result.loss, 0.0);

  const Tensor num_anchor = numerical_gradient(
      [&](const Tensor& p) {
        return ranked_triplet_loss(p, closer, farther, 0.2f).loss;
      },
      anchor);
  EXPECT_LT(gradient_max_relative_error(result.anchor_grad, num_anchor), 2e-2);

  const Tensor num_closer = numerical_gradient(
      [&](const Tensor& p) {
        return ranked_triplet_loss(anchor, p, farther, 0.2f).loss;
      },
      closer);
  EXPECT_LT(gradient_max_relative_error(result.closer_grad, num_closer), 2e-2);

  const Tensor num_farther = numerical_gradient(
      [&](const Tensor& p) {
        return ranked_triplet_loss(anchor, closer, p, 0.2f).loss;
      },
      farther);
  EXPECT_LT(gradient_max_relative_error(result.farther_grad, num_farther),
            2e-2);
}

TEST(BatchMetricLoss, LabelCountMismatchThrows) {
  TripletMarginLoss loss;
  const Tensor f = random_features(3, 2, 17);
  EXPECT_THROW(loss.compute(f, {0, 1}), std::logic_error);
}

}  // namespace
}  // namespace duo::nn
