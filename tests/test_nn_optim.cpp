#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "nn/optimizer.hpp"

namespace duo::nn {
namespace {

// Single-parameter quadratic: loss = ½‖w − target‖².
struct Quadratic {
  explicit Quadratic(Tensor target)
      : target(std::move(target)), param(Tensor(this->target.shape())) {}

  double loss_and_grad() {
    param.zero_grad();
    Tensor diff = param.value - target;
    param.grad = diff;
    return 0.5 * diff.dot(diff);
  }

  Tensor target;
  Parameter param;
};

TEST(Sgd, ConvergesOnQuadratic) {
  Quadratic q(Tensor({4}, std::vector<float>{1, -2, 3, 0.5f}));
  Sgd opt({&q.param}, 0.1f, 0.9f);
  double loss = 0.0;
  for (int i = 0; i < 200; ++i) {
    loss = q.loss_and_grad();
    opt.step();
  }
  EXPECT_LT(loss, 1e-6);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Quadratic a(Tensor({4}, 3.0f));
  Quadratic b(Tensor({4}, 3.0f));
  Sgd plain({&a.param}, 0.05f, 0.0f);
  Sgd momentum({&b.param}, 0.05f, 0.9f);
  for (int i = 0; i < 20; ++i) {
    a.loss_and_grad();
    plain.step();
    b.loss_and_grad();
    momentum.step();
  }
  EXPECT_LT(b.loss_and_grad(), a.loss_and_grad());
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q(Tensor({3}, std::vector<float>{-1, 4, 2}));
  Adam opt({&q.param}, 0.1f);
  double loss = 0.0;
  for (int i = 0; i < 400; ++i) {
    loss = q.loss_and_grad();
    opt.step();
  }
  EXPECT_LT(loss, 1e-4);
}

TEST(Adam, HandlesSparseGradients) {
  Quadratic q(Tensor({2}, std::vector<float>{5, 5}));
  Adam opt({&q.param}, 0.05f);
  for (int i = 0; i < 600; ++i) {
    q.loss_and_grad();
    // Zero out one coordinate's gradient half the time.
    if (i % 2 == 0) q.param.grad[1] = 0.0f;
    opt.step();
  }
  EXPECT_NEAR(q.param.value[0], 5.0f, 0.15f);
  EXPECT_NEAR(q.param.value[1], 5.0f, 0.3f);
}

TEST(Optimizer, ZeroGradClearsAll) {
  Quadratic q(Tensor({2}, 1.0f));
  Sgd opt({&q.param}, 0.1f);
  q.loss_and_grad();
  EXPECT_GT(q.param.grad.norm_l1(), 0.0);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(q.param.grad.norm_l1(), 0.0);
}

TEST(Optimizer, LearningRateAccessors) {
  Quadratic q(Tensor({1}, 0.0f));
  Adam opt({&q.param}, 0.01f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.01f);
  opt.set_lr(0.5f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
}

TEST(StepDecay, FollowsPaperSchedule) {
  // §V-B: step size 0.1, decays ×0.9 every 50 steps.
  StepDecay schedule(0.1f, 50, 0.9f);
  EXPECT_FLOAT_EQ(schedule.lr_at(0), 0.1f);
  EXPECT_FLOAT_EQ(schedule.lr_at(49), 0.1f);
  EXPECT_FLOAT_EQ(schedule.lr_at(50), 0.09f);
  EXPECT_FLOAT_EQ(schedule.lr_at(100), 0.1f * 0.9f * 0.9f);
}

TEST(StepDecay, ZeroPeriodMeansConstant) {
  StepDecay schedule(0.2f, 0, 0.5f);
  EXPECT_FLOAT_EQ(schedule.lr_at(1000), 0.2f);
}

TEST(TrainingLoop, LinearRegressionLearns) {
  // y = W*x with fixed W*, least squares through the layer machinery.
  Rng rng(5);
  Linear model(3, 2, rng);
  const Tensor w_true = Tensor::uniform({2, 3}, -1.0f, 1.0f, rng);
  Adam opt(model.parameters(), 0.02f);

  double last_loss = 0.0;
  for (int step = 0; step < 500; ++step) {
    const Tensor x = Tensor::uniform({3}, -1.0f, 1.0f, rng);
    Tensor y_true({2});
    for (std::int64_t o = 0; o < 2; ++o) {
      for (std::int64_t i = 0; i < 3; ++i) {
        y_true[o] += w_true.at(o, i) * x[i];
      }
    }
    const Tensor y = model.forward(x);
    Tensor diff = y - y_true;
    last_loss = diff.dot(diff);
    opt.zero_grad();
    diff *= 2.0f;
    (void)model.backward(diff);
    opt.step();
  }
  EXPECT_LT(last_loss, 1e-3);
}

}  // namespace
}  // namespace duo::nn
