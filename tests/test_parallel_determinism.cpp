// Bitwise determinism of the parallelized compute kernels across thread
// counts. The Conv3d/pooling shards are constructed so every accumulated
// address is owned by exactly one shard and accumulated in the serial loop's
// order; these tests catch any regression of that property (e.g. a future
// "optimization" that reduces per-thread partials in completion order).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/surrogate.hpp"
#include "common/thread_pool.hpp"
#include "models/feature_extractor.hpp"
#include "nn/conv3d.hpp"
#include "nn/pool3d.hpp"
#include "retrieval/system.hpp"
#include "video/synthetic.hpp"

namespace duo {
namespace {

// Runs fn with the compute pool pinned to `threads` workers, restoring the
// shared pool afterwards even on exceptions.
template <typename Fn>
auto with_compute_threads(std::size_t threads, Fn&& fn) {
  ThreadPool pool(threads);
  struct Restore {
    ~Restore() { set_compute_pool(nullptr); }
  } restore;
  set_compute_pool(&pool);
  return fn();
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << what << " diverges at flat index " << i;
  }
}

struct ConvResult {
  Tensor output;
  Tensor grad_input;
  std::vector<Tensor> param_grads;
};

ConvResult run_conv(std::size_t threads, nn::Conv3dKernel kernel) {
  return with_compute_threads(threads, [kernel] {
    Rng rng(42);
    nn::Conv3dSpec spec;
    spec.in_channels = 3;
    spec.out_channels = 8;
    spec.kernel_impl = kernel;
    nn::Conv3d conv(spec, rng);
    const Tensor input = Tensor::uniform({3, 6, 10, 10}, -1.0f, 1.0f, rng);
    ConvResult r;
    r.output = conv.forward(input);
    Tensor grad_out = Tensor::uniform(r.output.shape(), -1.0f, 1.0f, rng);
    r.grad_input = conv.backward(grad_out);
    for (auto* p : conv.parameters()) r.param_grads.push_back(p->grad);
    return r;
  });
}

// Both kernels must be bitwise deterministic across thread counts: the
// direct loops shard disjoint output channels, the im2col/GEMM path shards
// disjoint accumulator tiles with thread-count-independent chains.
TEST(ParallelDeterminism, Conv3dForwardBackwardBitwiseAcrossThreadCounts) {
  for (const auto kernel :
       {nn::Conv3dKernel::kDirect, nn::Conv3dKernel::kGemm}) {
    const ConvResult serial = run_conv(1, kernel);
    for (const std::size_t threads : {2u, 8u}) {
      const ConvResult parallel = run_conv(threads, kernel);
      expect_bitwise_equal(serial.output, parallel.output, "conv3d output");
      expect_bitwise_equal(serial.grad_input, parallel.grad_input,
                           "conv3d grad_input");
      ASSERT_EQ(serial.param_grads.size(), parallel.param_grads.size());
      for (std::size_t i = 0; i < serial.param_grads.size(); ++i) {
        expect_bitwise_equal(serial.param_grads[i], parallel.param_grads[i],
                             "conv3d param grad");
      }
    }
  }
}

struct PoolResult {
  Tensor max_out, max_grad, avg_out, avg_grad;
};

PoolResult run_pools(std::size_t threads) {
  return with_compute_threads(threads, [] {
    Rng rng(43);
    const Tensor input = Tensor::uniform({6, 8, 12, 12}, -1.0f, 1.0f, rng);
    PoolResult r;
    nn::MaxPool3d max_pool({2, 2, 2});
    r.max_out = max_pool.forward(input);
    r.max_grad =
        max_pool.backward(Tensor::uniform(r.max_out.shape(), -1.f, 1.f, rng));
    Rng rng2(43);  // identical grad stream for the avg pool
    nn::AvgPool3d avg_pool({2, 3, 3}, {2, 2, 2});
    r.avg_out = avg_pool.forward(input);
    r.avg_grad =
        avg_pool.backward(Tensor::uniform(r.avg_out.shape(), -1.f, 1.f, rng2));
    return r;
  });
}

TEST(ParallelDeterminism, PoolingBitwiseAcrossThreadCounts) {
  const PoolResult serial = run_pools(1);
  const PoolResult parallel = run_pools(8);
  expect_bitwise_equal(serial.max_out, parallel.max_out, "maxpool output");
  expect_bitwise_equal(serial.max_grad, parallel.max_grad, "maxpool grad");
  expect_bitwise_equal(serial.avg_out, parallel.avg_out, "avgpool output");
  expect_bitwise_equal(serial.avg_grad, parallel.avg_grad, "avgpool grad");
}

video::Video make_test_video(std::uint64_t seed) {
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = {8, 16, 16, 3};
  return video::SyntheticGenerator(spec).make_video(0, 0, seed);
}

Tensor run_extract(models::ModelKind kind, std::size_t threads) {
  return with_compute_threads(threads, [kind] {
    Rng rng(7);
    auto model =
        models::make_extractor(kind, video::VideoGeometry{8, 16, 16, 3}, 16, rng);
    model->set_training(false);
    return model->extract(make_test_video(11));
  });
}

TEST(ParallelDeterminism, ExtractorFeaturesBitwiseAcrossThreadCounts) {
  for (const auto kind : {models::ModelKind::kC3D, models::ModelKind::kI3D,
                          models::ModelKind::kResNet18}) {
    const Tensor serial = run_extract(kind, 1);
    const Tensor parallel = run_extract(kind, 8);
    expect_bitwise_equal(serial, parallel, models::model_kind_name(kind));
  }
}

TEST(ParallelDeterminism, ClonedExtractorMatchesOriginalBitwise) {
  Rng rng(9);
  auto model = models::make_extractor(models::ModelKind::kC3D,
                                      video::VideoGeometry{8, 16, 16, 3}, 16,
                                      rng);
  model->set_training(false);
  auto copy = model->clone();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->feature_dim(), model->feature_dim());
  EXPECT_EQ(copy->name(), model->name());
  EXPECT_EQ(copy->parameter_count(), model->parameter_count());
  const video::Video v = make_test_video(21);
  expect_bitwise_equal(model->extract(v), copy->extract(v), "clone features");
}

struct GalleryResult {
  double map;
  std::vector<std::int64_t> top;
};

GalleryResult run_gallery(std::size_t threads) {
  return with_compute_threads(threads, [] {
    auto spec = video::DatasetSpec::hmdb51_like(55);
    spec.num_classes = 3;
    spec.train_per_class = 5;
    spec.test_per_class = 2;
    spec.geometry = {8, 16, 16, 3};
    auto dataset = video::SyntheticGenerator(spec).generate();
    Rng rng(31);
    auto extractor = models::make_extractor(models::ModelKind::kC3D,
                                            spec.geometry, 16, rng);
    retrieval::RetrievalSystem system(std::move(extractor), 2);
    system.add_all(dataset.train);
    GalleryResult r;
    r.map = retrieval::evaluate_map(system, dataset.test, 5);
    r.top = system.retrieve(dataset.test[0], 5);
    return r;
  });
}

TEST(ParallelDeterminism, GalleryAndMapBitwiseAcrossThreadCounts) {
  const GalleryResult serial = run_gallery(1);
  const GalleryResult parallel = run_gallery(8);
  EXPECT_EQ(serial.map, parallel.map);
  EXPECT_EQ(serial.top, parallel.top);
}

// Synthetic surrogate-training inputs: a handful of videos and random (but
// fixed) ranking triplets over them — no victim needed to exercise the
// data-parallel training loop.
struct TrainSetup {
  attack::VideoStore store;
  attack::SurrogateDataset dataset;
};

TrainSetup make_train_setup() {
  auto spec = video::DatasetSpec::hmdb51_like(5);
  spec.geometry = {8, 16, 16, 3};
  video::SyntheticGenerator gen(spec);
  TrainSetup s;
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const video::Video v = gen.make_video(i % 3, i, 1000 + i);
    s.store.add(v);
    ids.push_back(v.id());
    s.dataset.video_ids.push_back(v.id());
  }
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    const std::int64_t a = ids[rng.uniform_index(ids.size())];
    std::int64_t c = ids[rng.uniform_index(ids.size())];
    while (c == a) c = ids[rng.uniform_index(ids.size())];
    std::int64_t f = ids[rng.uniform_index(ids.size())];
    while (f == a || f == c) f = ids[rng.uniform_index(ids.size())];
    s.dataset.triplets.push_back({a, c, f});
  }
  return s;
}

struct TrainResult {
  std::vector<double> losses;
  std::vector<Tensor> params;
};

TrainResult run_train(std::size_t threads, int batch_size) {
  return with_compute_threads(threads, [batch_size] {
    TrainSetup s = make_train_setup();
    Rng rng(77);
    auto model = models::make_extractor(models::ModelKind::kC3D,
                                        video::VideoGeometry{8, 16, 16, 3}, 16,
                                        rng);
    attack::SurrogateTrainConfig cfg;
    cfg.epochs = 2;
    cfg.triplets_per_epoch = 24;
    cfg.batch_size = batch_size;
    const auto stats = attack::train_surrogate(*model, s.dataset, s.store, cfg);
    TrainResult r;
    r.losses = stats.epoch_losses;
    for (auto* p : model->parameters()) r.params.push_back(p->value);
    return r;
  });
}

TEST(ParallelDeterminism, TrainSurrogateBitwiseAcrossThreadCounts) {
  // Covers batch_size 1 (legacy one-triplet-per-step schedule) and a batch
  // larger than the shard count (8 threads → 8 replica groups < 12 samples),
  // where shards process multiple samples and the serial reduction order is
  // the only thing keeping the result stable.
  for (const int batch : {1, 12}) {
    const TrainResult serial = run_train(1, batch);
    const TrainResult parallel = run_train(8, batch);
    ASSERT_EQ(serial.losses.size(), parallel.losses.size()) << "batch " << batch;
    for (std::size_t i = 0; i < serial.losses.size(); ++i) {
      EXPECT_EQ(serial.losses[i], parallel.losses[i])
          << "epoch loss " << i << " diverges at batch_size " << batch;
    }
    ASSERT_EQ(serial.params.size(), parallel.params.size());
    for (std::size_t i = 0; i < serial.params.size(); ++i) {
      expect_bitwise_equal(serial.params[i], parallel.params[i],
                           "trained surrogate parameter");
    }
  }
}

}  // namespace
}  // namespace duo
