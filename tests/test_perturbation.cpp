#include <gtest/gtest.h>

#include "attack/perturbation.hpp"
#include "metrics/metrics.hpp"

namespace duo::attack {
namespace {

video::VideoGeometry geo() { return {4, 6, 6, 3}; }

TEST(Perturbation, InitialStateMatchesAlgorithm1Line1) {
  Perturbation p(geo());
  // I = 1, F = 1, θ = 0.
  EXPECT_EQ(p.selected_pixels(), geo().total_elements());
  EXPECT_EQ(p.selected_frames(), geo().frames);
  EXPECT_EQ(p.magnitude().norm_l0(), 0);
  EXPECT_EQ(p.combined().norm_l0(), 0);
}

TEST(Perturbation, SetFramesMasksWholeFrames) {
  Perturbation p(geo());
  p.set_frames({1, 3});
  EXPECT_EQ(p.selected_frames(), 2);
  EXPECT_EQ(p.selected_frame_indices(), (std::vector<std::int64_t>{1, 3}));
  const std::int64_t fe = geo().elements_per_frame();
  EXPECT_FLOAT_EQ(p.frame_mask()[0 * fe], 0.0f);
  EXPECT_FLOAT_EQ(p.frame_mask()[1 * fe + 5], 1.0f);
}

TEST(Perturbation, SetFramesRejectsOutOfRange) {
  Perturbation p(geo());
  EXPECT_THROW(p.set_frames({4}), std::logic_error);
  EXPECT_THROW(p.set_frames({-1}), std::logic_error);
}

TEST(Perturbation, CombinedIsElementwiseProduct) {
  Perturbation p(geo());
  p.magnitude().fill(2.0f);
  p.set_frames({0});
  const Tensor phi = p.combined();
  // Only frame 0 is nonzero.
  EXPECT_EQ(phi.norm_l0(), geo().elements_per_frame());
  EXPECT_FLOAT_EQ(phi[0], 2.0f);
}

TEST(Perturbation, TopKRestrictionEnforcesBudgetWithinFrames) {
  Perturbation p(geo());
  p.set_frames({2});
  Rng rng(5);
  const Tensor scores = Tensor::uniform(geo().tensor_shape(), 0.0f, 1.0f, rng);
  p.restrict_pixels_to_frames_topk(scores, 10);
  EXPECT_EQ(p.selected_pixels(), 10);
  // All selected pixels live inside frame 2.
  const std::int64_t fe = geo().elements_per_frame();
  for (std::int64_t i = 0; i < p.pixel_mask().size(); ++i) {
    if (p.pixel_mask()[i] > 0.5f) {
      EXPECT_EQ(i / fe, 2);
    }
  }
}

TEST(Perturbation, TopKPicksHighestScores) {
  video::VideoGeometry g{1, 2, 2, 1};
  Perturbation p(g);
  Tensor scores({1, 2, 2, 1}, std::vector<float>{0.1f, 0.9f, 0.5f, 0.3f});
  p.restrict_pixels_to_frames_topk(scores, 2);
  EXPECT_FLOAT_EQ(p.pixel_mask()[1], 1.0f);
  EXPECT_FLOAT_EQ(p.pixel_mask()[2], 1.0f);
  EXPECT_FLOAT_EQ(p.pixel_mask()[0], 0.0f);
}

TEST(Perturbation, TopKLargerThanCandidatesSelectsAll) {
  video::VideoGeometry g{2, 2, 2, 1};
  Perturbation p(g);
  p.set_frames({0});
  Rng rng(6);
  p.restrict_pixels_to_frames_topk(
      Tensor::uniform(g.tensor_shape(), 0.0f, 1.0f, rng), 100);
  EXPECT_EQ(p.selected_pixels(), g.elements_per_frame());
}

TEST(Perturbation, ClampMagnitudeBoundsTheta) {
  Perturbation p(geo());
  p.magnitude().fill(100.0f);
  p.clamp_magnitude(30.0f);
  EXPECT_FLOAT_EQ(p.magnitude().max(), 30.0f);
  p.magnitude().fill(-100.0f);
  p.clamp_magnitude(30.0f);
  EXPECT_FLOAT_EQ(p.magnitude().min(), -30.0f);
}

TEST(Perturbation, ApplyQuantizesAndClamps) {
  video::VideoGeometry g{1, 2, 2, 1};
  video::Video v(g, 0, 1);
  v.data()[0] = 250.0f;
  v.data()[1] = 4.0f;
  v.data()[2] = 100.0f;
  v.data()[3] = 100.0f;

  Perturbation p(g);
  p.magnitude()[0] = 20.0f;   // would exceed 255 → clamps to 255
  p.magnitude()[1] = -20.0f;  // would go below 0 → clamps to 0
  p.magnitude()[2] = 0.3f;    // below rounding threshold → vanishes
  p.magnitude()[3] = 1.6f;    // rounds to +2

  const video::Video adv = p.apply_to(v);
  EXPECT_FLOAT_EQ(adv.data()[0], 255.0f);
  EXPECT_FLOAT_EQ(adv.data()[1], 0.0f);
  EXPECT_FLOAT_EQ(adv.data()[2], 100.0f);
  EXPECT_FLOAT_EQ(adv.data()[3], 102.0f);
}

TEST(Perturbation, EffectivePerturbationMeasuresQuantizedDelta) {
  video::VideoGeometry g{1, 2, 2, 1};
  video::Video v(g, 0, 1);
  v.data().fill(100.0f);
  Perturbation p(g);
  p.magnitude()[0] = 0.2f;  // vanishes after quantization
  p.magnitude()[1] = 3.0f;
  const Tensor eff = p.effective_perturbation(v);
  EXPECT_EQ(metrics::sparsity(eff), 1);
  EXPECT_FLOAT_EQ(eff[1], 3.0f);
}

TEST(Perturbation, SpaIsNeverAboveSelectedPixelBudget) {
  Perturbation p(geo());
  p.set_frames({0, 1});
  Rng rng(7);
  p.restrict_pixels_to_frames_topk(
      Tensor::uniform(geo().tensor_shape(), 0.0f, 1.0f, rng), 40);
  p.magnitude() = Tensor::uniform(geo().tensor_shape(), -30.0f, 30.0f, rng);

  video::Video v(geo(), 0, 1);
  v.data().fill(128.0f);
  const Tensor eff = p.effective_perturbation(v);
  EXPECT_LE(metrics::sparsity(eff), 40);
}

TEST(Perturbation, GeometryMismatchThrows) {
  Perturbation p(geo());
  video::Video v({2, 2, 2, 1}, 0, 1);
  EXPECT_THROW(p.apply_to(v), std::logic_error);
}

}  // namespace
}  // namespace duo::attack
