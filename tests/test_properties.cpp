// Parameterized property sweeps (TEST_P) over the library's invariants:
// conv/pool shape algebra and gradients across geometries, mask-budget
// invariants across (k, n) combinations, selector budget invariants, metric
// identities, and codec round-trips across geometries.

#include <gtest/gtest.h>

#include <tuple>

#include "attack/lp_box_admm.hpp"
#include "attack/perturbation.hpp"
#include "baselines/vanilla.hpp"
#include "metrics/metrics.hpp"
#include "nn/conv3d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/pool3d.hpp"
#include "video/codec.hpp"
#include "video/frame_sampler.hpp"
#include "video/synthetic.hpp"

namespace duo {
namespace {

// ---------- Conv3d shape/gradient sweep -------------------------------------

struct ConvCase {
  std::int64_t cin, cout;
  std::array<std::int64_t, 3> kernel, stride, padding;
  Tensor::Shape input;  // [C, T, H, W]
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, ForwardBackwardShapesAgree) {
  const ConvCase& c = GetParam();
  Rng rng(11);
  nn::Conv3dSpec spec;
  spec.in_channels = c.cin;
  spec.out_channels = c.cout;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  nn::Conv3d layer(spec, rng);

  const Tensor x = Tensor::uniform(c.input, -1.0f, 1.0f, rng);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), layer.output_shape(c.input));
  const Tensor gx = layer.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST_P(ConvSweep, GradientMatchesNumerical) {
  const ConvCase& c = GetParam();
  Rng rng(12);
  nn::Conv3dSpec spec;
  spec.in_channels = c.cin;
  spec.out_channels = c.cout;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  nn::Conv3d layer(spec, rng);

  const Tensor x = Tensor::uniform(c.input, -1.0f, 1.0f, rng);
  const Tensor y = layer.forward(x);
  Rng wrng(13);
  const Tensor w = Tensor::uniform(y.shape(), -1.0f, 1.0f, wrng);
  const Tensor analytic = layer.backward(w);
  const Tensor numerical = nn::numerical_gradient(
      [&](const Tensor& probe) { return layer.forward(probe).dot(w); }, x);
  EXPECT_LT(nn::gradient_max_relative_error(analytic, numerical), 3e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    ::testing::Values(
        ConvCase{1, 1, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}, {1, 2, 3, 3}},
        ConvCase{2, 3, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, {2, 3, 4, 4}},
        ConvCase{3, 2, {1, 3, 3}, {1, 2, 2}, {0, 1, 1}, {3, 2, 5, 5}},
        ConvCase{2, 2, {2, 2, 2}, {2, 2, 2}, {0, 0, 0}, {2, 4, 4, 4}},
        ConvCase{1, 4, {3, 1, 1}, {1, 1, 1}, {1, 0, 0}, {1, 5, 2, 2}}));

// ---------- Perturbation budget sweep ----------------------------------------

class BudgetSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(BudgetSweep, MaskBudgetsAlwaysHold) {
  const auto [k, n] = GetParam();
  video::VideoGeometry g{8, 12, 12, 3};
  Rng rng(17 + static_cast<std::uint64_t>(k * 131 + n));
  attack::Perturbation p = baselines::random_support(g, k, n, rng);

  EXPECT_LE(p.selected_frames(), n);
  EXPECT_LE(p.selected_pixels(), k);
  const Tensor support = p.pixel_mask() * p.frame_mask();
  EXPECT_EQ(support.norm_l0(), p.selected_pixels());

  // Effective perturbation after magnitudes + quantization never exceeds k
  // elements or n frames.
  p.magnitude() = Tensor::uniform(g.tensor_shape(), -30.0f, 30.0f, rng);
  video::Video v(g, 0, 0);
  v.data().fill(128.0f);
  const Tensor eff = p.effective_perturbation(v);
  EXPECT_LE(metrics::sparsity(eff), k);
  EXPECT_LE(metrics::perturbed_frames(eff, g.elements_per_frame()), n);
}

INSTANTIATE_TEST_SUITE_P(
    KAndN, BudgetSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 16, 100, 400),
                       ::testing::Values<std::int64_t>(1, 2, 4, 8)));

// ---------- Selector budget sweep --------------------------------------------

class SelectorSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SelectorSweep, BothSelectorsHitExactBudget) {
  const std::int64_t k = GetParam();
  Rng rng(23);
  const Tensor scores = Tensor::uniform({512}, -1.0f, 1.0f, rng);
  EXPECT_EQ(attack::topk_select(scores, k).norm_l0(), std::min<std::int64_t>(k, 512));
  EXPECT_EQ(attack::lp_box_admm_select(scores, k, attack::LpBoxAdmmConfig{})
                .norm_l0(),
            std::min<std::int64_t>(k, 512));
}

TEST_P(SelectorSweep, SelectedScoresAreNotWorseThanRejected) {
  // For plain top-k: the worst selected score must be ≤ the best rejected
  // score (we select the most negative).
  const std::int64_t k = GetParam();
  if (k >= 512) return;
  Rng rng(29);
  const Tensor scores = Tensor::uniform({512}, -1.0f, 1.0f, rng);
  const Tensor mask = attack::topk_select(scores, k);
  float worst_selected = -2.0f, best_rejected = 2.0f;
  for (std::int64_t i = 0; i < scores.size(); ++i) {
    if (mask[i] > 0.5f) {
      worst_selected = std::max(worst_selected, scores[i]);
    } else {
      best_rejected = std::min(best_rejected, scores[i]);
    }
  }
  EXPECT_LE(worst_selected, best_rejected);
}

INSTANTIATE_TEST_SUITE_P(Budgets, SelectorSweep,
                         ::testing::Values<std::int64_t>(0, 1, 7, 64, 511,
                                                         512, 1000));

// ---------- Metric identities across list sizes ------------------------------

class ListSweep : public ::testing::TestWithParam<int> {};

TEST_P(ListSweep, NdcgSelfSimilarityIsOne) {
  metrics::RetrievalList list;
  for (int i = 0; i < GetParam(); ++i) list.push_back(i * 7 + 3);
  EXPECT_NEAR(metrics::ndcg_similarity(list, list), 1.0, 1e-9);
}

TEST_P(ListSweep, ApAtMSelfIsOneAndSymmetricZeroForDisjoint) {
  metrics::RetrievalList a, b;
  for (int i = 0; i < GetParam(); ++i) {
    a.push_back(i);
    b.push_back(i + 100000);
  }
  EXPECT_DOUBLE_EQ(metrics::ap_at_m(a, a), 1.0);
  EXPECT_DOUBLE_EQ(metrics::ap_at_m(a, b), 0.0);
  EXPECT_DOUBLE_EQ(metrics::ap_at_m(b, a), 0.0);
}

TEST_P(ListSweep, NdcgIsSymmetricForEqualLengthLists) {
  // H discounts by both ranks, so it is symmetric whenever the two lists
  // have the same length (the normalizer depends only on that length).
  Rng rng(31 + static_cast<std::uint64_t>(GetParam()));
  metrics::RetrievalList a, b;
  for (int i = 0; i < GetParam(); ++i) {
    a.push_back(static_cast<std::int64_t>(rng.uniform_index(1000)) * 3);
    b.push_back(static_cast<std::int64_t>(rng.uniform_index(1000)) * 3 + 1);
  }
  // Deduplicate, then truncate both to a common length.
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  const std::size_t len = std::min(a.size(), b.size());
  if (len == 0) return;
  a.resize(len);
  b.resize(len);
  // Plant a few shared items so the similarity is non-trivial.
  for (std::size_t i = 0; i < len; i += 3) b[i] = a[i];
  EXPECT_NEAR(metrics::ndcg_similarity(a, b), metrics::ndcg_similarity(b, a),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ListSweep, ::testing::Values(1, 2, 5, 10, 50));

// ---------- Codec round-trip across geometries --------------------------------

class CodecSweep : public ::testing::TestWithParam<video::VideoGeometry> {};

TEST_P(CodecSweep, RoundTripsAnyGeometry) {
  const video::VideoGeometry g = GetParam();
  video::Video v(g, 3, 77);
  Rng rng(37);
  for (auto& x : v.data().flat()) {
    x = std::round(rng.uniform_f(0.0f, 255.0f));
  }
  const std::string path = "/tmp/duo_prop_codec.duov";
  ASSERT_TRUE(video::save_video(v, path));
  const auto loaded = video::load_video(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->geometry(), g);
  EXPECT_TRUE(loaded->data().allclose(v.data(), 0.51f));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CodecSweep,
    ::testing::Values(video::VideoGeometry{1, 1, 1, 1},
                      video::VideoGeometry{4, 8, 6, 3},
                      video::VideoGeometry{16, 24, 24, 3},
                      video::VideoGeometry{2, 32, 16, 1}));

// ---------- Frame sampler sweep -----------------------------------------------

class SamplerSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(SamplerSweep, IndicesMonotoneAndInRange) {
  const auto [total, target] = GetParam();
  const auto idx = video::uniform_sample_indices(total, target);
  ASSERT_EQ(idx.size(), static_cast<std::size_t>(target));
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_GE(idx[i], 0);
    EXPECT_LT(idx[i], total);
    if (i > 0) EXPECT_GE(idx[i], idx[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Counts, SamplerSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(16, 17, 100, 1000),
                       ::testing::Values<std::int64_t>(1, 8, 16)));

}  // namespace
}  // namespace duo
