#include <gtest/gtest.h>

#include <memory>

#include "retrieval/index.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/synthetic.hpp"

namespace duo::retrieval {
namespace {

GalleryEntry entry(std::int64_t id, int label, std::vector<float> f) {
  GalleryEntry e;
  e.id = id;
  e.label = label;
  const auto dim = static_cast<std::int64_t>(f.size());
  e.feature = Tensor({dim}, std::move(f));
  return e;
}

TEST(DataNode, ReturnsNearestFirst) {
  DataNode node(2);
  node.add(entry(1, 0, {0.0f, 0.0f}));
  node.add(entry(2, 0, {1.0f, 0.0f}));
  node.add(entry(3, 0, {5.0f, 5.0f}));
  const auto result = node.query(Tensor({2}, std::vector<float>{0.1f, 0.0f}), 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 1);
  EXPECT_EQ(result[1].id, 2);
  EXPECT_EQ(result[2].id, 3);
  EXPECT_LT(result[0].distance, result[1].distance);
}

TEST(DataNode, TopMSmallerThanStore) {
  DataNode node(1);
  for (int i = 0; i < 10; ++i) {
    node.add(entry(i, 0, {static_cast<float>(i)}));
  }
  const auto result = node.query(Tensor({1}, std::vector<float>{0.0f}), 3);
  EXPECT_EQ(result.size(), 3u);
}

TEST(DataNode, MExceedingSizeReturnsAll) {
  DataNode node(1);
  node.add(entry(1, 0, {1.0f}));
  EXPECT_EQ(node.query(Tensor({1}, std::vector<float>{0.0f}), 10).size(), 1u);
}

TEST(DataNode, DimensionMismatchThrows) {
  DataNode node(2);
  EXPECT_THROW(node.add(entry(1, 0, {1.0f})), std::logic_error);
}

TEST(DataNode, DeterministicTieBreakById) {
  DataNode node(1);
  node.add(entry(7, 0, {1.0f}));
  node.add(entry(3, 0, {1.0f}));
  const auto result = node.query(Tensor({1}, std::vector<float>{1.0f}), 2);
  EXPECT_EQ(result[0].id, 3);
  EXPECT_EQ(result[1].id, 7);
}

TEST(RetrievalIndex, ShardsRoundRobin) {
  RetrievalIndex index(1, 3);
  for (int i = 0; i < 7; ++i) index.add(entry(i, 0, {static_cast<float>(i)}));
  EXPECT_EQ(index.size(), 7u);
  EXPECT_EQ(index.node_count(), 3u);
}

TEST(RetrievalIndex, ScatterGatherMatchesSingleNode) {
  // The same entries in 1 node vs 4 nodes must yield identical top-m.
  RetrievalIndex single(2, 1);
  RetrievalIndex sharded(2, 4);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto e = entry(i, i % 5, {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)});
    single.add(e);
    sharded.add(e);
  }
  const Tensor q({2}, std::vector<float>{0.2f, -0.3f});
  const auto a = single.query(q, 10);
  const auto b = sharded.query(q, 10, /*parallel=*/true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
  }
}

TEST(RetrievalIndex, RequiresAtLeastOneNode) {
  EXPECT_THROW(RetrievalIndex(2, 0), std::logic_error);
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = video::DatasetSpec::hmdb51_like(21);
    spec_.num_classes = 4;
    spec_.train_per_class = 5;
    spec_.test_per_class = 2;
    spec_.geometry = {8, 16, 16, 3};
    dataset_ = video::SyntheticGenerator(spec_).generate();

    Rng rng(33);
    auto extractor =
        models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16, rng);
    system_ = std::make_unique<RetrievalSystem>(std::move(extractor), 3);
    system_->add_all(dataset_.train);
  }

  video::DatasetSpec spec_;
  video::Dataset dataset_;
  std::unique_ptr<RetrievalSystem> system_;
};

TEST_F(SystemTest, GalleryVideoRetrievesItselfFirst) {
  const auto& v = dataset_.train[3];
  const auto list = system_->retrieve(v, 5);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front(), v.id());
}

TEST_F(SystemTest, LabelLookupAndCounts) {
  const auto& v = dataset_.train.front();
  EXPECT_EQ(system_->label_of(v.id()), v.label());
  EXPECT_EQ(system_->relevant_count(v.label()), spec_.train_per_class);
  EXPECT_EQ(system_->relevant_count(9999), 0);
  EXPECT_THROW(system_->label_of(123456), std::logic_error);
}

TEST_F(SystemTest, DuplicateGalleryIdThrows) {
  EXPECT_THROW(system_->add_to_gallery(dataset_.train.front()),
               std::logic_error);
}

TEST_F(SystemTest, BlackBoxHandleCountsQueries) {
  BlackBoxHandle handle(*system_);
  EXPECT_EQ(handle.query_count(), 0);
  (void)handle.retrieve(dataset_.test.front(), 5);
  (void)handle.retrieve(dataset_.test.back(), 5);
  EXPECT_EQ(handle.query_count(), 2);
  handle.reset_query_count();
  EXPECT_EQ(handle.query_count(), 0);
}

TEST_F(SystemTest, RetrieveFeatureMatchesRetrieveVideo) {
  const auto& v = dataset_.test.front();
  const auto via_video = system_->retrieve_detailed(v, 5);
  const auto via_feature =
      system_->retrieve_feature(system_->extractor().extract(v), 5);
  ASSERT_EQ(via_video.size(), via_feature.size());
  for (std::size_t i = 0; i < via_video.size(); ++i) {
    EXPECT_EQ(via_video[i].id, via_feature[i].id);
  }
}

TEST_F(SystemTest, TrainerReportsLossPerEpoch) {
  nn::TripletMarginLoss loss(0.3f);
  TrainerConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 8;
  const auto stats =
      train_extractor(system_->extractor(), loss, dataset_.train, cfg);
  EXPECT_EQ(stats.epoch_losses.size(), 3u);
  EXPECT_TRUE(std::isfinite(stats.final_loss()));
}

TEST_F(SystemTest, MapOfTrainedSystemBeatsUntrained) {
  // Proper version of the above: train first, then build the gallery.
  nn::TripletMarginLoss loss(0.3f);
  TrainerConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 8;
  cfg.learning_rate = 3e-3f;

  Rng rng_a(55), rng_b(55);
  auto untrained = std::make_unique<RetrievalSystem>(
      models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16, rng_a),
      2);
  untrained->add_all(dataset_.train);
  const double map_untrained = evaluate_map(*untrained, dataset_.test, 5);

  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16, rng_b);
  train_extractor(*extractor, loss, dataset_.train, cfg);
  RetrievalSystem trained(std::move(extractor), 2);
  trained.add_all(dataset_.train);
  const double map_trained = evaluate_map(trained, dataset_.test, 5);

  EXPECT_GT(map_trained, map_untrained);
}

}  // namespace
}  // namespace duo::retrieval
