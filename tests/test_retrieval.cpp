#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "retrieval/index.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/synthetic.hpp"

namespace duo::retrieval {
namespace {

// Forwards to an inner extractor but refuses to clone, exercising the
// serial fallback of FeatureExtractor::extract_batch.
class NonCloneableExtractor : public models::FeatureExtractor {
 public:
  explicit NonCloneableExtractor(
      std::unique_ptr<models::FeatureExtractor> inner)
      : inner_(std::move(inner)) {}

  Tensor extract_model_input(const Tensor& input) override {
    return inner_->extract_model_input(input);
  }
  Tensor backward_to_input(const Tensor& grad_feature) override {
    return inner_->backward_to_input(grad_feature);
  }
  std::vector<nn::Parameter*> parameters() override {
    return inner_->parameters();
  }
  void set_training(bool training) override { inner_->set_training(training); }
  std::int64_t feature_dim() const override { return inner_->feature_dim(); }
  std::string name() const override { return "noclone-" + inner_->name(); }
  // clone() keeps the base-class default: nullptr ("not cloneable").

 private:
  std::unique_ptr<models::FeatureExtractor> inner_;
};

GalleryEntry entry(std::int64_t id, int label, std::vector<float> f) {
  GalleryEntry e;
  e.id = id;
  e.label = label;
  const auto dim = static_cast<std::int64_t>(f.size());
  e.feature = Tensor({dim}, std::move(f));
  return e;
}

TEST(DataNode, ReturnsNearestFirst) {
  DataNode node(2);
  node.add(entry(1, 0, {0.0f, 0.0f}));
  node.add(entry(2, 0, {1.0f, 0.0f}));
  node.add(entry(3, 0, {5.0f, 5.0f}));
  const auto result = node.query(Tensor({2}, std::vector<float>{0.1f, 0.0f}), 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 1);
  EXPECT_EQ(result[1].id, 2);
  EXPECT_EQ(result[2].id, 3);
  EXPECT_LT(result[0].distance_sq, result[1].distance_sq);
}

TEST(DataNode, TopMSmallerThanStore) {
  DataNode node(1);
  for (int i = 0; i < 10; ++i) {
    node.add(entry(i, 0, {static_cast<float>(i)}));
  }
  const auto result = node.query(Tensor({1}, std::vector<float>{0.0f}), 3);
  EXPECT_EQ(result.size(), 3u);
}

TEST(DataNode, MExceedingSizeReturnsAll) {
  DataNode node(1);
  node.add(entry(1, 0, {1.0f}));
  EXPECT_EQ(node.query(Tensor({1}, std::vector<float>{0.0f}), 10).size(), 1u);
}

TEST(DataNode, DimensionMismatchThrows) {
  DataNode node(2);
  EXPECT_THROW(node.add(entry(1, 0, {1.0f})), std::logic_error);
}

TEST(DataNode, DeterministicTieBreakById) {
  DataNode node(1);
  node.add(entry(7, 0, {1.0f}));
  node.add(entry(3, 0, {1.0f}));
  const auto result = node.query(Tensor({1}, std::vector<float>{1.0f}), 2);
  EXPECT_EQ(result[0].id, 3);
  EXPECT_EQ(result[1].id, 7);
}

TEST(NeighborOrder, SquaredDistanceConventionPinned) {
  // Neighbor::distance_sq is *squared* L2 — pinned here so a future scan
  // stage (e.g. IVF's quantized cell scan) can't silently feed a different
  // metric into the merge. (1,1) vs (4,5): L2 = 5, squared = 25.
  DataNode node(2);
  node.add(entry(1, 0, {4.0f, 5.0f}));
  const auto result = node.query(Tensor({2}, std::vector<float>{1.0f, 1.0f}), 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0].distance_sq, 25.0);
}

TEST(NeighborOrder, ComparatorIsTotalWithNaN) {
  // neighbor_less must be a strict total order even with NaN distances —
  // the raw `<` comparator it replaces is not (NaN is incomparable with
  // everything while finite values still compare, so "equivalence" loses
  // transitivity → UB in std::partial_sort). Check the strict-weak axioms
  // exhaustively over a mixed finite/NaN sample.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Neighbor> sample = {
      {1, 0, 0.0}, {2, 0, 1.0}, {3, 0, 1.0}, {4, 0, nan}, {5, 0, nan},
      {6, 0, -1.0}};
  for (const auto& a : sample) {
    EXPECT_FALSE(neighbor_less(a, a));  // irreflexive
    for (const auto& b : sample) {
      if (a.id != b.id) {
        // Total: distinct neighbors are never equivalent (ids tie-break).
        EXPECT_NE(neighbor_less(a, b), neighbor_less(b, a));
      }
      for (const auto& c : sample) {  // transitive
        if (neighbor_less(a, b) && neighbor_less(b, c)) {
          EXPECT_TRUE(neighbor_less(a, c));
        }
      }
    }
  }
}

TEST(NeighborOrder, NaNGalleryEntrySinksLast) {
  // Regression (headline bugfix): one NaN-poisoned gallery feature —
  // exactly the corruption class the PR 6 MaxPool3d fix proved reachable —
  // made the old raw-double comparator violate strict weak ordering inside
  // std::partial_sort. Observed on the old code: the NaN entry ranked at
  // position 1 of the top-10, above strictly closer finite entries. The fix
  // sinks NaN distances last under a total order.
  DataNode node(1);
  node.add(entry(0, 0, {std::numeric_limits<float>::quiet_NaN()}));
  for (int i = 1; i <= 32; ++i) {
    node.add(entry(i, 0, {static_cast<float>(100 - i)}));
  }
  const auto top = node.query(Tensor({1}, std::vector<float>{0.0f}), 10);
  ASSERT_EQ(top.size(), 10u);
  for (const auto& n : top) {
    EXPECT_NE(n.id, 0) << "NaN-poisoned entry ranked into the top-m";
    EXPECT_FALSE(std::isnan(n.distance_sq));
  }
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LT(top[i - 1].distance_sq, top[i].distance_sq);
  }
  // Asking for everything: the NaN entry comes back, but dead last.
  const auto all = node.query(Tensor({1}, std::vector<float>{0.0f}), 33);
  ASSERT_EQ(all.size(), 33u);
  EXPECT_EQ(all.back().id, 0);
  EXPECT_TRUE(std::isnan(all.back().distance_sq));
}

TEST(NeighborOrder, NaNPoisonedQueryIsDeterministic) {
  // An all-NaN distance column (NaN query feature) must order by id — the
  // old comparator returned ids in arbitrary heap order. Both DataNode and
  // the scatter-gather merge go through the shared comparator now.
  RetrievalIndex index(1, 3);
  for (int i = 15; i >= 0; --i) {
    index.add(entry(i, 0, {static_cast<float>(i)}));
  }
  const Tensor nan_q({1},
                     std::vector<float>{std::numeric_limits<float>::quiet_NaN()});
  const auto top = index.query(nan_q, 5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].id, static_cast<std::int64_t>(i));
    EXPECT_TRUE(std::isnan(top[i].distance_sq));
  }
}

TEST(RetrievalIndex, MZeroReturnsEmpty) {
  RetrievalIndex index(1, 2);
  index.add(entry(1, 0, {1.0f}));
  EXPECT_TRUE(index.query(Tensor({1}, std::vector<float>{0.0f}), 0).empty());
  DataNode node(1);
  node.add(entry(1, 0, {1.0f}));
  EXPECT_TRUE(node.query(Tensor({1}, std::vector<float>{0.0f}), 0).empty());
}

TEST(RetrievalIndex, EmptyShardAndEmptyIndex) {
  // 3 nodes, 2 entries: one shard is empty; queries must still work, and an
  // entirely empty index answers with an empty list.
  RetrievalIndex index(1, 3);
  EXPECT_TRUE(index.query(Tensor({1}, std::vector<float>{0.0f}), 4).empty());
  index.add(entry(1, 0, {1.0f}));
  index.add(entry(2, 0, {2.0f}));
  const auto result = index.query(Tensor({1}, std::vector<float>{0.0f}), 4);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1);
  EXPECT_EQ(result[1].id, 2);
}

TEST(RetrievalIndex, MExceedingSizeReturnsAllAcrossNodes) {
  RetrievalIndex index(1, 4);
  for (int i = 0; i < 6; ++i) index.add(entry(i, 0, {static_cast<float>(i)}));
  EXPECT_EQ(index.query(Tensor({1}, std::vector<float>{0.0f}), 100).size(), 6u);
}

TEST(RetrievalIndex, DuplicateDistancesMergeDeterministicallyAcrossNodeCounts) {
  // Many entries at identical distances: the (distance_sq, id) total order
  // must produce the same top-m whatever the shard count.
  std::vector<std::size_t> node_counts = {1, 2, 8};
  std::vector<std::vector<std::int64_t>> tops;
  for (const std::size_t nodes : node_counts) {
    RetrievalIndex index(1, nodes);
    Rng rng(11);
    std::vector<int> ids(40);
    for (int i = 0; i < 40; ++i) ids[static_cast<std::size_t>(i)] = i;
    rng.shuffle(ids);  // insertion order ≠ id order
    for (const int id : ids) {
      index.add(entry(id, 0, {static_cast<float>(id % 4)}));  // 4-way ties
    }
    const auto result =
        index.query(Tensor({1}, std::vector<float>{0.0f}), 10,
                    /*parallel=*/nodes > 1);
    std::vector<std::int64_t> got;
    for (const auto& n : result) got.push_back(n.id);
    tops.push_back(got);
  }
  EXPECT_EQ(tops[0], tops[1]);
  EXPECT_EQ(tops[0], tops[2]);
}

TEST(RetrievalIndex, RemoveByIdShrinksAndExcludes) {
  RetrievalIndex index(1, 3);
  for (int i = 0; i < 9; ++i) index.add(entry(i, 0, {static_cast<float>(i)}));
  EXPECT_TRUE(index.remove(0));
  EXPECT_FALSE(index.remove(0));  // already gone
  EXPECT_FALSE(index.remove(999));
  EXPECT_EQ(index.size(), 8u);
  const auto result = index.query(Tensor({1}, std::vector<float>{0.0f}), 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 1);  // 0 no longer retrievable
}

TEST(RetrievalIndex, ShardsRoundRobin) {
  RetrievalIndex index(1, 3);
  for (int i = 0; i < 7; ++i) index.add(entry(i, 0, {static_cast<float>(i)}));
  EXPECT_EQ(index.size(), 7u);
  EXPECT_EQ(index.node_count(), 3u);
}

TEST(RetrievalIndex, ScatterGatherMatchesSingleNode) {
  // The same entries in 1 node vs 4 nodes must yield identical top-m.
  RetrievalIndex single(2, 1);
  RetrievalIndex sharded(2, 4);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto e = entry(i, i % 5, {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)});
    single.add(e);
    sharded.add(e);
  }
  const Tensor q({2}, std::vector<float>{0.2f, -0.3f});
  const auto a = single.query(q, 10);
  const auto b = sharded.query(q, 10, /*parallel=*/true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].distance_sq, b[i].distance_sq);
  }
}

TEST(RetrievalIndex, RequiresAtLeastOneNode) {
  EXPECT_THROW(RetrievalIndex(2, 0), std::logic_error);
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = video::DatasetSpec::hmdb51_like(21);
    spec_.num_classes = 4;
    spec_.train_per_class = 5;
    spec_.test_per_class = 2;
    spec_.geometry = {8, 16, 16, 3};
    dataset_ = video::SyntheticGenerator(spec_).generate();

    Rng rng(33);
    auto extractor =
        models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16, rng);
    system_ = std::make_unique<RetrievalSystem>(std::move(extractor), 3);
    system_->add_all(dataset_.train);
  }

  video::DatasetSpec spec_;
  video::Dataset dataset_;
  std::unique_ptr<RetrievalSystem> system_;
};

TEST_F(SystemTest, GalleryVideoRetrievesItselfFirst) {
  const auto& v = dataset_.train[3];
  const auto list = system_->retrieve(v, 5);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front(), v.id());
}

TEST_F(SystemTest, LabelLookupAndCounts) {
  const auto& v = dataset_.train.front();
  EXPECT_EQ(system_->label_of(v.id()), v.label());
  EXPECT_EQ(system_->relevant_count(v.label()), spec_.train_per_class);
  EXPECT_EQ(system_->relevant_count(9999), 0);
  EXPECT_THROW(system_->label_of(123456), std::logic_error);
}

TEST_F(SystemTest, DuplicateGalleryIdThrows) {
  EXPECT_THROW(system_->add_to_gallery(dataset_.train.front()),
               std::logic_error);
}

TEST_F(SystemTest, RejectedDuplicateLeavesSystemConsistent) {
  // Regression: the duplicate-id check used to fire only *after* the index
  // was mutated, leaving an indexed entry with no label bookkeeping. A
  // rejected add must leave index and label maps exactly as they were.
  const auto& dup = dataset_.train.front();
  const std::size_t size_before = system_->gallery_size();
  const auto count_before = system_->relevant_count(dup.label());
  const auto list_before = system_->retrieve(dup, 8);

  EXPECT_THROW(system_->add_to_gallery(dup), std::logic_error);

  EXPECT_EQ(system_->gallery_size(), size_before);
  EXPECT_EQ(system_->relevant_count(dup.label()), count_before);
  const auto list_after = system_->retrieve(dup, 8);
  EXPECT_EQ(list_after, list_before);
  // Every retrievable id still has label bookkeeping (the old bug left an
  // id in the index that label_of would reject).
  for (const auto id : list_after) {
    EXPECT_NO_THROW((void)system_->label_of(id));
  }
}

TEST_F(SystemTest, AddAllRejectsDuplicateBatchAtomically) {
  const std::size_t size_before = system_->gallery_size();
  // A batch with one fresh video and one duplicate must change nothing —
  // not even the fresh video may land.
  video::Video fresh(spec_.geometry, /*label=*/0, /*id=*/100000);
  EXPECT_THROW(system_->add_all({fresh, dataset_.train.front()}),
               std::logic_error);
  EXPECT_EQ(system_->gallery_size(), size_before);
  EXPECT_THROW((void)system_->label_of(fresh.id()), std::logic_error);

  // Duplicates *within* the batch are rejected too.
  video::Video twin(spec_.geometry, /*label=*/0, /*id=*/100001);
  EXPECT_THROW(system_->add_all({twin, twin}), std::logic_error);
  EXPECT_EQ(system_->gallery_size(), size_before);

  // The fresh video is still addable afterwards.
  system_->add_to_gallery(fresh);
  EXPECT_EQ(system_->gallery_size(), size_before + 1);
  EXPECT_EQ(system_->label_of(fresh.id()), fresh.label());
}

TEST_F(SystemTest, ExtractFeaturesEmptyInputReturnsEmpty) {
  EXPECT_TRUE(system_->extract_features({}).empty());
  EXPECT_TRUE(system_->extractor()
                  .extract_batch(std::span<const video::Video>{})
                  .empty());
}

TEST_F(SystemTest, NonCloneableFallbackMatchesParallelPathBitwise) {
  // Two systems with bitwise-identical extractor weights: one cloneable
  // (parallel extract_batch), one wrapped to refuse cloning (serial
  // fallback). Their features must agree bitwise, even on a multi-worker
  // pool.
  ThreadPool pool(4);
  set_compute_pool(&pool);
  struct Restore {
    ~Restore() { set_compute_pool(nullptr); }
  } restore;

  Rng rng_a(77), rng_b(77);
  RetrievalSystem cloneable(
      models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16,
                             rng_a),
      2);
  RetrievalSystem fallback(
      std::make_unique<NonCloneableExtractor>(models::make_extractor(
          models::ModelKind::kC3D, spec_.geometry, 16, rng_b)),
      2);

  const auto parallel = cloneable.extract_features(dataset_.test);
  const auto serial = fallback.extract_features(dataset_.test);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    ASSERT_EQ(parallel[i].shape(), serial[i].shape()) << "video " << i;
    for (std::int64_t j = 0; j < parallel[i].size(); ++j) {
      ASSERT_EQ(parallel[i][j], serial[i][j])
          << "video " << i << " flat index " << j;
    }
  }
}

TEST_F(SystemTest, BlackBoxHandleCountIsThreadSafe) {
  // The counter must be exact when concurrent clients share one handle
  // (routine once queries flow through the serve layer). A stub backend
  // keeps the extractor out of the picture.
  BlackBoxHandle handle(BlackBoxHandle::RetrieveFn(
      [](const video::Video&, std::size_t) { return metrics::RetrievalList{}; }));
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 500;
  video::Video probe(spec_.geometry, 0, 424242);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        (void)handle.retrieve(probe, 1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(handle.query_count(), kThreads * kQueriesPerThread);
}

TEST_F(SystemTest, BlackBoxHandleCountsQueries) {
  BlackBoxHandle handle(*system_);
  EXPECT_EQ(handle.query_count(), 0);
  (void)handle.retrieve(dataset_.test.front(), 5);
  (void)handle.retrieve(dataset_.test.back(), 5);
  EXPECT_EQ(handle.query_count(), 2);
  handle.reset_query_count();
  EXPECT_EQ(handle.query_count(), 0);
}

TEST_F(SystemTest, RetrieveFeatureMatchesRetrieveVideo) {
  const auto& v = dataset_.test.front();
  const auto via_video = system_->retrieve_detailed(v, 5);
  const auto via_feature =
      system_->retrieve_feature(system_->extractor().extract(v), 5);
  ASSERT_EQ(via_video.size(), via_feature.size());
  for (std::size_t i = 0; i < via_video.size(); ++i) {
    EXPECT_EQ(via_video[i].id, via_feature[i].id);
  }
}

TEST_F(SystemTest, RemoveFromGalleryKeepsBookkeepingConsistent) {
  const auto& victim = dataset_.train[4];
  const std::size_t size_before = system_->gallery_size();
  const auto count_before = system_->relevant_count(victim.label());

  EXPECT_TRUE(system_->remove_from_gallery(victim.id()));
  EXPECT_EQ(system_->gallery_size(), size_before - 1);
  EXPECT_EQ(system_->relevant_count(victim.label()), count_before - 1);
  EXPECT_THROW((void)system_->label_of(victim.id()), std::logic_error);
  for (const auto id : system_->retrieve(victim, 20)) {
    EXPECT_NE(id, victim.id());
  }
  // Unknown ids are a no-op, and a removed video is addable again.
  EXPECT_FALSE(system_->remove_from_gallery(victim.id()));
  EXPECT_FALSE(system_->remove_from_gallery(987654));
  system_->add_to_gallery(victim);
  EXPECT_EQ(system_->gallery_size(), size_before);
  EXPECT_EQ(system_->relevant_count(victim.label()), count_before);
  EXPECT_EQ(system_->retrieve(victim, 1).front(), victim.id());
}

TEST_F(SystemTest, RetrieveFeatureInsideWorkerMatchesOutside) {
  // Regression for the nested fan-out: evaluate_map calls retrieve_feature
  // from inside compute_pool().parallel_for, where the per-shard scatter
  // used to re-enter the saturated pool. The fix runs the inner scan serial
  // on pool workers — results must be bitwise identical either way.
  ThreadPool pool(4);
  set_compute_pool(&pool);
  struct Restore {
    ~Restore() { set_compute_pool(nullptr); }
  } restore;

  const Tensor feature = system_->extractor().extract(dataset_.test.front());
  const auto outside = system_->retrieve_feature(feature, 8);
  std::vector<Neighbor> inside;
  compute_pool().parallel_for(1, [&](std::size_t) {
    inside = system_->retrieve_feature(feature, 8);
  });
  ASSERT_EQ(outside.size(), inside.size());
  for (std::size_t i = 0; i < outside.size(); ++i) {
    EXPECT_EQ(outside[i].id, inside[i].id);
    EXPECT_EQ(outside[i].distance_sq, inside[i].distance_sq);
  }
}

TEST_F(SystemTest, EvaluateMapBitwiseAcrossThreadCounts) {
  // The satellite contract for the nested-parallelism fix: mAP is bitwise
  // identical whether the per-query fan-out runs serial or on 8 workers.
  double maps[2];
  const std::size_t threads[2] = {1, 8};
  for (int t = 0; t < 2; ++t) {
    ThreadPool pool(threads[t]);
    set_compute_pool(&pool);
    maps[t] = evaluate_map(*system_, dataset_.test, 5);
    set_compute_pool(nullptr);
  }
  EXPECT_EQ(maps[0], maps[1]);
}

TEST_F(SystemTest, TrainerReportsLossPerEpoch) {
  nn::TripletMarginLoss loss(0.3f);
  TrainerConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 8;
  const auto stats =
      train_extractor(system_->extractor(), loss, dataset_.train, cfg);
  EXPECT_EQ(stats.epoch_losses.size(), 3u);
  EXPECT_TRUE(std::isfinite(stats.final_loss()));
}

TEST_F(SystemTest, MapOfTrainedSystemBeatsUntrained) {
  // Proper version of the above: train first, then build the gallery.
  nn::TripletMarginLoss loss(0.3f);
  TrainerConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 8;
  cfg.learning_rate = 3e-3f;

  Rng rng_a(55), rng_b(55);
  auto untrained = std::make_unique<RetrievalSystem>(
      models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16, rng_a),
      2);
  untrained->add_all(dataset_.train);
  const double map_untrained = evaluate_map(*untrained, dataset_.test, 5);

  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, spec_.geometry, 16, rng_b);
  train_extractor(*extractor, loss, dataset_.train, cfg);
  RetrievalSystem trained(std::move(extractor), 2);
  trained.add_all(dataset_.train);
  const double map_trained = evaluate_map(trained, dataset_.test, 5);

  EXPECT_GT(map_trained, map_untrained);
}

}  // namespace
}  // namespace duo::retrieval
