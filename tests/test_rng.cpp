#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace duo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Rng, UniformIndexZeroRangeRaises) {
  Rng rng(16);
  // n == 0 used to hit `% 0` (undefined behaviour); it must now fail loudly.
  EXPECT_THROW(rng.uniform_index(0), std::logic_error);
  // The generator stays usable after the failed draw.
  EXPECT_LT(rng.uniform_index(10), 10u);
}

TEST(Rng, UniformIntEmptyRangeRaises) {
  Rng rng(17);
  EXPECT_THROW(rng.uniform_int(3, 2), std::logic_error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasApproximatelyUnitVariance) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(12);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(14);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace duo
