#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/feature_extractor.hpp"
#include "models/serialization.hpp"
#include "video/synthetic.hpp"

namespace duo::models {
namespace {

video::VideoGeometry geo() { return {8, 12, 12, 3}; }

video::Video probe_video() {
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = geo();
  return video::SyntheticGenerator(spec).make_video(0, 0, 99);
}

TEST(Serialization, RoundTripRestoresExactFeatures) {
  Rng rng(1);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  model->set_training(false);
  const video::Video v = probe_video();
  const Tensor before = model->extract(v);

  const std::string path = "/tmp/duo_test_weights.duow";
  ASSERT_TRUE(save_parameters(*model, path));

  // A differently seeded model produces different features; loading the
  // checkpoint must restore the original exactly.
  Rng rng2(2);
  auto other = make_extractor(ModelKind::kC3D, geo(), 16, rng2);
  other->set_training(false);
  EXPECT_FALSE(other->extract(v).allclose(before));
  ASSERT_TRUE(load_parameters(*other, path));
  EXPECT_TRUE(other->extract(v).allclose(before));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsArchitectureMismatch) {
  Rng rng(3);
  auto c3d = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  auto tpn = make_extractor(ModelKind::kTPN, geo(), 16, rng);

  const std::string path = "/tmp/duo_test_weights_mismatch.duow";
  ASSERT_TRUE(save_parameters(*c3d, path));
  EXPECT_FALSE(load_parameters(*tpn, path));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsFeatureDimMismatch) {
  Rng rng(4);
  auto narrow = make_extractor(ModelKind::kC3D, geo(), 8, rng);
  auto wide = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  const std::string path = "/tmp/duo_test_weights_dim.duow";
  ASSERT_TRUE(save_parameters(*narrow, path));
  EXPECT_FALSE(load_parameters(*wide, path));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsGarbageFile) {
  const std::string path = "/tmp/duo_test_weights_garbage.duow";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  Rng rng(5);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  EXPECT_FALSE(load_parameters(*model, path));
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileFailsCleanly) {
  Rng rng(6);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  EXPECT_FALSE(load_parameters(*model, "/tmp/no_such_checkpoint.duow"));
}

TEST(Serialization, TruncatedFileRejectedWithoutPartialLoad) {
  Rng rng(7);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  model->set_training(false);
  const video::Video v = probe_video();

  const std::string path = "/tmp/duo_test_weights_trunc.duow";
  ASSERT_TRUE(save_parameters(*model, path));
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto full = in.tellg();
  in.seekg(0);
  std::vector<char> data(static_cast<std::size_t>(full) / 2);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  Rng rng2(8);
  auto other = make_extractor(ModelKind::kC3D, geo(), 16, rng2);
  other->set_training(false);
  const Tensor before = other->extract(v);
  EXPECT_FALSE(load_parameters(*other, path));
  // All-or-nothing: the failed load must not have modified any parameter.
  EXPECT_TRUE(other->extract(v).allclose(before));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace duo::models
