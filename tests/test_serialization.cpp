#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "attack/checkpoint.hpp"
#include "models/feature_extractor.hpp"
#include "models/serialization.hpp"
#include "video/synthetic.hpp"

namespace duo::models {
namespace {

video::VideoGeometry geo() { return {8, 12, 12, 3}; }

video::Video probe_video() {
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = geo();
  return video::SyntheticGenerator(spec).make_video(0, 0, 99);
}

TEST(Serialization, RoundTripRestoresExactFeatures) {
  Rng rng(1);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  model->set_training(false);
  const video::Video v = probe_video();
  const Tensor before = model->extract(v);

  const std::string path = "/tmp/duo_test_weights.duow";
  ASSERT_TRUE(save_parameters(*model, path));

  // A differently seeded model produces different features; loading the
  // checkpoint must restore the original exactly.
  Rng rng2(2);
  auto other = make_extractor(ModelKind::kC3D, geo(), 16, rng2);
  other->set_training(false);
  EXPECT_FALSE(other->extract(v).allclose(before));
  ASSERT_TRUE(load_parameters(*other, path));
  EXPECT_TRUE(other->extract(v).allclose(before));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsArchitectureMismatch) {
  Rng rng(3);
  auto c3d = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  auto tpn = make_extractor(ModelKind::kTPN, geo(), 16, rng);

  const std::string path = "/tmp/duo_test_weights_mismatch.duow";
  ASSERT_TRUE(save_parameters(*c3d, path));
  EXPECT_FALSE(load_parameters(*tpn, path));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsFeatureDimMismatch) {
  Rng rng(4);
  auto narrow = make_extractor(ModelKind::kC3D, geo(), 8, rng);
  auto wide = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  const std::string path = "/tmp/duo_test_weights_dim.duow";
  ASSERT_TRUE(save_parameters(*narrow, path));
  EXPECT_FALSE(load_parameters(*wide, path));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsGarbageFile) {
  const std::string path = "/tmp/duo_test_weights_garbage.duow";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  Rng rng(5);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  EXPECT_FALSE(load_parameters(*model, path));
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileFailsCleanly) {
  Rng rng(6);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  EXPECT_FALSE(load_parameters(*model, "/tmp/no_such_checkpoint.duow"));
}

TEST(Serialization, TruncatedFileRejectedWithoutPartialLoad) {
  Rng rng(7);
  auto model = make_extractor(ModelKind::kC3D, geo(), 16, rng);
  model->set_training(false);
  const video::Video v = probe_video();

  const std::string path = "/tmp/duo_test_weights_trunc.duow";
  ASSERT_TRUE(save_parameters(*model, path));
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto full = in.tellg();
  in.seekg(0);
  std::vector<char> data(static_cast<std::size_t>(full) / 2);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  Rng rng2(8);
  auto other = make_extractor(ModelKind::kC3D, geo(), 16, rng2);
  other->set_training(false);
  const Tensor before = other->extract(v);
  EXPECT_FALSE(load_parameters(*other, path));
  // All-or-nothing: the failed load must not have modified any parameter.
  EXPECT_TRUE(other->extract(v).allclose(before));
  std::remove(path.c_str());
}

TEST(SerializationIo, PrimitivesRoundTripExactly) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_u64(buf, 0);
  io::write_u64(buf, std::numeric_limits<std::uint64_t>::max());
  io::write_i64(buf, -123456789);
  io::write_f64(buf, -0.0);
  io::write_f64(buf, 1.0 / 3.0);
  io::write_i64_vec(buf, {5, -7, 0});
  io::write_f64_vec(buf, {0.25, -1e300});
  Tensor t({2, 3});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(i) * 0.5f - 1.0f;
  }
  io::write_tensor(buf, t);

  std::uint64_t u = 1;
  std::int64_t i64 = 0;
  double d = 0.0;
  std::vector<std::int64_t> iv;
  std::vector<double> dv;
  Tensor back;
  ASSERT_TRUE(io::read_u64(buf, u));
  EXPECT_EQ(u, 0u);
  ASSERT_TRUE(io::read_u64(buf, u));
  EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
  ASSERT_TRUE(io::read_i64(buf, i64));
  EXPECT_EQ(i64, -123456789);
  ASSERT_TRUE(io::read_f64(buf, d));
  EXPECT_EQ(d, 0.0);
  EXPECT_TRUE(std::signbit(d));
  ASSERT_TRUE(io::read_f64(buf, d));
  EXPECT_EQ(d, 1.0 / 3.0);  // bit-exact, not allclose
  ASSERT_TRUE(io::read_i64_vec(buf, iv));
  EXPECT_EQ(iv, (std::vector<std::int64_t>{5, -7, 0}));
  ASSERT_TRUE(io::read_f64_vec(buf, dv));
  EXPECT_EQ(dv, (std::vector<double>{0.25, -1e300}));
  ASSERT_TRUE(io::read_tensor(buf, back));
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i], t[i]) << "element " << i;
  }
  // The stream is fully consumed: another read reports failure.
  EXPECT_FALSE(io::read_u64(buf, u));
}

TEST(SerializationIo, CorruptTensorHeadersRejectedBeforeAllocation) {
  // Absurd rank.
  {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    io::write_i64(buf, 9);  // rank > 8
    Tensor t;
    EXPECT_FALSE(io::read_tensor(buf, t));
  }
  // Element count that would demand a multi-terabyte allocation.
  {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    io::write_i64(buf, 2);
    io::write_i64(buf, 1 << 30);
    io::write_i64(buf, 1 << 30);
    Tensor t;
    EXPECT_FALSE(io::read_tensor(buf, t));
  }
  // Negative vector length.
  {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    io::write_i64(buf, -4);
    std::vector<double> v;
    EXPECT_FALSE(io::read_f64_vec(buf, v));
  }
  // Truncated payload: header promises more floats than the stream holds.
  {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    io::write_i64(buf, 1);
    io::write_i64(buf, 100);
    io::write_f64(buf, 1.0);
    Tensor t;
    EXPECT_FALSE(io::read_tensor(buf, t));
  }
}

TEST(SerializationIo, Fnv1aFingerprintsDiscriminate) {
  // Offset basis of 64-bit FNV-1a: hash of zero bytes.
  EXPECT_EQ(io::fnv1a(nullptr, 0), 0xCBF29CE484222325ULL);
  Tensor a({4});
  a.fill(1.0f);
  Tensor b = a;
  EXPECT_EQ(io::fnv1a(a), io::fnv1a(b));
  b[3] = 1.0000001f;
  EXPECT_NE(io::fnv1a(a), io::fnv1a(b));
}

TEST(SerializationIo, AtomicWriteCommitsOrLeavesNothing) {
  const std::string path = "/tmp/duo_test_atomic.bin";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(tmp.c_str());

  ASSERT_TRUE(io::atomic_write(path, [](std::ostream& out) {
    io::write_u64(out, 42);
  }));
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(tmp).good());  // no staging residue

  // A writer that poisons the stream must not replace the committed file.
  EXPECT_FALSE(io::atomic_write(
      path, [](std::ostream& out) { out.setstate(std::ios::badbit); }));
  EXPECT_FALSE(std::ifstream(tmp).good());
  std::ifstream check(path, std::ios::binary);
  std::uint64_t value = 0;
  ASSERT_TRUE(io::read_u64(check, value));
  EXPECT_EQ(value, 42u);
  std::remove(path.c_str());
}

TEST(SerializationIo, AtomicWriteShortWriteNeverReplacesGoodCheckpoint) {
  const std::string path = "/tmp/duo_test_atomic_short.bin";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(tmp.c_str());

  ASSERT_TRUE(
      io::atomic_write(path, [](std::ostream& out) { io::write_u64(out, 7); }));

  // Short write: a writer that emits partial data and then hits a device
  // failure must leave the previously committed file byte-identical, with no
  // staging residue — the crash-mid-save scenario durable recovery leans on.
  EXPECT_FALSE(io::atomic_write(path, [](std::ostream& out) {
    io::write_u64(out, 999);  // partial payload reaches the staging file
    out.setstate(std::ios::badbit);  // then the write "fails" mid-stream
  }));
  EXPECT_FALSE(std::ifstream(tmp).good());

  // A throwing writer propagates the exception and also leaves the committed
  // file untouched.
  EXPECT_THROW(io::atomic_write(path,
                                [](std::ostream& out) {
                                  io::write_u64(out, 999);
                                  throw std::runtime_error("disk on fire");
                                }),
               std::runtime_error);
  EXPECT_FALSE(std::ifstream(tmp).good());

  std::ifstream check(path, std::ios::binary);
  std::uint64_t value = 0;
  ASSERT_TRUE(io::read_u64(check, value));
  EXPECT_EQ(value, 7u);
  EXPECT_FALSE(io::read_u64(check, value));  // exactly one record, no tail
  std::remove(path.c_str());
}

attack::SparseQueryCheckpoint sample_sq_checkpoint() {
  attack::SparseQueryCheckpoint ck;
  ck.geometry = geo();
  ck.seed = 99;
  ck.support_size = 150;
  ck.source_hash = 0xDEADBEEFCAFEF00DULL;
  ck.next_iteration = 7;
  ck.t_current = 0.625;
  ck.t_history = {1.0, 0.875, 0.625};
  ck.queries = 13;
  ck.stall = 2;
  ck.rng_state = 0x1234567890ABCDEFULL;
  ck.deck = {3, 1, 4, 1, 5};
  ck.deck_pos = 2;
  ck.v_adv = Tensor(geo().tensor_shape());
  for (std::int64_t i = 0; i < ck.v_adv.size(); ++i) {
    ck.v_adv[i] = static_cast<float>(i % 256);
  }
  return ck;
}

TEST(SerializationIo, SparseQueryCheckpointRoundTrips) {
  const attack::SparseQueryCheckpoint ck = sample_sq_checkpoint();
  const std::string path = "/tmp/duo_test_sq_ck.bin";
  ASSERT_TRUE(attack::save_checkpoint(ck, path));

  attack::SparseQueryCheckpoint back;
  ASSERT_TRUE(attack::load_checkpoint(back, path));
  EXPECT_EQ(back.geometry, ck.geometry);
  EXPECT_EQ(back.seed, ck.seed);
  EXPECT_EQ(back.support_size, ck.support_size);
  EXPECT_EQ(back.source_hash, ck.source_hash);
  EXPECT_EQ(back.next_iteration, ck.next_iteration);
  EXPECT_EQ(back.t_current, ck.t_current);
  EXPECT_EQ(back.t_history, ck.t_history);
  EXPECT_EQ(back.queries, ck.queries);
  EXPECT_EQ(back.stall, ck.stall);
  EXPECT_EQ(back.rng_state, ck.rng_state);
  EXPECT_EQ(back.deck, ck.deck);
  EXPECT_EQ(back.deck_pos, ck.deck_pos);
  ASSERT_EQ(back.v_adv.size(), ck.v_adv.size());
  for (std::int64_t i = 0; i < ck.v_adv.size(); ++i) {
    EXPECT_EQ(back.v_adv[i], ck.v_adv[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializationIo, DuoCheckpointRoundTrips) {
  attack::DuoCheckpoint ck;
  ck.geometry = geo();
  ck.source_hash = 77;
  ck.iter_numH = 2;
  ck.next_round = 1;
  ck.t_history = {0.5, 0.25};
  ck.queries = 31;
  ck.v_cur = Tensor(geo().tensor_shape());
  ck.v_cur.fill(17.0f);
  ck.has_init = true;
  ck.pixel_mask = Tensor(geo().tensor_shape());
  ck.pixel_mask.fill(1.0f);
  ck.frame_mask = Tensor(geo().tensor_shape());
  ck.frame_mask.fill(0.0f);

  const std::string path = "/tmp/duo_test_duo_ck.bin";
  ASSERT_TRUE(attack::save_checkpoint(ck, path));
  attack::DuoCheckpoint back;
  ASSERT_TRUE(attack::load_checkpoint(back, path));
  EXPECT_EQ(back.geometry, ck.geometry);
  EXPECT_EQ(back.source_hash, ck.source_hash);
  EXPECT_EQ(back.iter_numH, ck.iter_numH);
  EXPECT_EQ(back.next_round, ck.next_round);
  EXPECT_EQ(back.t_history, ck.t_history);
  EXPECT_EQ(back.queries, ck.queries);
  EXPECT_TRUE(back.has_init);
  ASSERT_EQ(back.v_cur.size(), ck.v_cur.size());
  for (std::int64_t i = 0; i < ck.v_cur.size(); ++i) {
    EXPECT_EQ(back.v_cur[i], ck.v_cur[i]);
    EXPECT_EQ(back.pixel_mask[i], ck.pixel_mask[i]);
    EXPECT_EQ(back.frame_mask[i], ck.frame_mask[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializationIo, CheckpointLoadRejectsCorruption) {
  const std::string path = "/tmp/duo_test_bad_ck.bin";
  attack::SparseQueryCheckpoint sq;
  attack::DuoCheckpoint duo;

  // Missing file.
  std::remove(path.c_str());
  EXPECT_FALSE(attack::load_checkpoint(sq, path));
  EXPECT_FALSE(attack::load_checkpoint(duo, path));

  // Garbage bytes.
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all, sorry";
  }
  EXPECT_FALSE(attack::load_checkpoint(sq, path));
  EXPECT_FALSE(attack::load_checkpoint(duo, path));

  // Wrong magic: a valid Duo checkpoint is not a SparseQuery checkpoint and
  // vice versa.
  attack::DuoCheckpoint valid_duo;
  valid_duo.geometry = geo();
  valid_duo.v_cur = Tensor(geo().tensor_shape());
  ASSERT_TRUE(attack::save_checkpoint(valid_duo, path));
  EXPECT_FALSE(attack::load_checkpoint(sq, path));
  const attack::SparseQueryCheckpoint valid_sq = sample_sq_checkpoint();
  ASSERT_TRUE(attack::save_checkpoint(valid_sq, path));
  EXPECT_FALSE(attack::load_checkpoint(duo, path));

  // Truncation: every prefix of a valid checkpoint must be rejected, and the
  // failed load must leave the output untouched.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto full = in.tellg();
  in.seekg(0);
  std::vector<char> bytes(static_cast<std::size_t>(full));
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()) / 2);
  }
  attack::SparseQueryCheckpoint untouched;
  untouched.queries = -55;  // sentinel
  EXPECT_FALSE(attack::load_checkpoint(untouched, path));
  EXPECT_EQ(untouched.queries, -55);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace duo::models
