// RetrievalServer / AsyncBlackBoxHandle: answers must be bitwise identical
// to direct RetrievalSystem::retrieve calls for any client count and
// max_batch; shutdown must drain and fulfill every queued future; the
// bounded queue must apply backpressure without deadlocking; stats must
// account every request. These suites (together with the pipelined
// SparseQuery tests) are the TSAN gate for the serve layer.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "metrics/metrics.hpp"
#include "serve/async_handle.hpp"
#include "serve/server.hpp"
#include "video/synthetic.hpp"

namespace duo::serve {
namespace {

// A small untrained world: serve-layer correctness is about plumbing, not
// retrieval quality, so random extractor weights keep the fixture fast.
struct ServeWorld {
  video::DatasetSpec spec;
  video::Dataset dataset;
  std::unique_ptr<retrieval::RetrievalSystem> system;
  // Direct answers computed before any server touches the extractor.
  std::vector<metrics::RetrievalList> expected;  // for dataset.test, m = 5

  static const ServeWorld& instance() {
    static ServeWorld world = build();
    return world;
  }
  static ServeWorld& mutable_instance() {
    return const_cast<ServeWorld&>(instance());
  }

 private:
  static ServeWorld build() {
    ServeWorld w;
    w.spec = video::DatasetSpec::hmdb51_like(31);
    w.spec.num_classes = 4;
    w.spec.train_per_class = 5;
    w.spec.test_per_class = 3;
    w.spec.geometry = {8, 16, 16, 3};
    w.dataset = video::SyntheticGenerator(w.spec).generate();

    Rng rng(91);
    auto extractor = models::make_extractor(models::ModelKind::kC3D,
                                            w.spec.geometry, 16, rng);
    w.system =
        std::make_unique<retrieval::RetrievalSystem>(std::move(extractor), 3);
    w.system->add_all(w.dataset.train);

    w.expected.reserve(w.dataset.test.size());
    for (const auto& v : w.dataset.test) {
      w.expected.push_back(w.system->retrieve(v, 5));
    }
    return w;
  }
};

TEST(Serve, AnswersMatchDirectRetrieveAcrossBatchSizes) {
  auto& w = ServeWorld::mutable_instance();
  for (const std::size_t max_batch : {1u, 3u, 8u}) {
    ServerConfig cfg;
    cfg.max_batch = max_batch;
    RetrievalServer server(*w.system, cfg);
    std::vector<std::future<metrics::RetrievalList>> futures;
    for (const auto& v : w.dataset.test) {
      futures.push_back(server.submit(v, 5));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get(), w.expected[i])
          << "max_batch=" << max_batch << " query " << i;
    }
    server.shutdown();
  }
}

TEST(Serve, ConcurrentClientsGetBitwiseIdenticalAnswers) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.queue_capacity = 16;
  RetrievalServer server(*w.system, cfg);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t vi = static_cast<std::size_t>(t + q * kClients) %
                               w.dataset.test.size();
        const auto answer = server.submit(w.dataset.test[vi], 5).get();
        if (answer != w.expected[vi]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  server.shutdown();
  EXPECT_EQ(mismatches.load(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, kClients * kQueriesPerClient);
}

TEST(Serve, ShutdownDrainsAndFulfillsEveryQueuedFuture) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.queue_capacity = 64;
  RetrievalServer server(*w.system, cfg);

  std::vector<std::future<metrics::RetrievalList>> futures;
  std::vector<std::size_t> indices;
  for (int r = 0; r < 3; ++r) {
    for (std::size_t i = 0; i < w.dataset.test.size(); ++i) {
      futures.push_back(server.submit(w.dataset.test[i], 5));
      indices.push_back(i);
    }
  }
  // Shut down immediately: most requests are still queued, and all of them
  // must still be answered (graceful drain), with correct results.
  server.shutdown();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), w.expected[indices[i]]) << "future " << i;
  }
}

TEST(Serve, SubmitAfterShutdownFailsTheFuture) {
  auto& w = ServeWorld::mutable_instance();
  RetrievalServer server(*w.system);
  server.shutdown();
  EXPECT_TRUE(server.stopped());
  auto future = server.submit(w.dataset.test.front(), 5);
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(Serve, ShutdownIsIdempotent) {
  auto& w = ServeWorld::mutable_instance();
  RetrievalServer server(*w.system);
  (void)server.submit(w.dataset.test.front(), 5).get();
  server.shutdown();
  server.shutdown();  // second call is a no-op
  EXPECT_TRUE(server.stopped());
}

TEST(Serve, BoundedQueueBackpressureDoesNotDeadlock) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 2;  // tiny: submitters must block and resume
  RetrievalServer server(*w.system, cfg);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 8;
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t vi =
            static_cast<std::size_t>(t) % w.dataset.test.size();
        if (!server.submit(w.dataset.test[vi], 5).get().empty()) {
          answered.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  server.shutdown();
  EXPECT_EQ(answered.load(), kClients * kQueriesPerClient);
}

TEST(Serve, StatsAccountEveryQueryAndBatch) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 4;
  RetrievalServer server(*w.system, cfg);

  const int n = 10;
  std::vector<std::future<metrics::RetrievalList>> futures;
  for (int i = 0; i < n; ++i) {
    futures.push_back(server.submit(
        w.dataset.test[static_cast<std::size_t>(i) % w.dataset.test.size()],
        5));
  }
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, n);
  ASSERT_EQ(stats.batch_size_counts.size(), cfg.max_batch + 1);
  std::int64_t histogram_queries = 0;
  std::int64_t histogram_batches = 0;
  for (std::size_t s = 1; s < stats.batch_size_counts.size(); ++s) {
    histogram_queries +=
        static_cast<std::int64_t>(s) * stats.batch_size_counts[s];
    histogram_batches += stats.batch_size_counts[s];
  }
  EXPECT_EQ(histogram_queries, n);
  EXPECT_EQ(histogram_batches, stats.batches);
  EXPECT_GE(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.max_latency_ms);
  EXPECT_GT(stats.mean_batch_size(), 0.0);

  server.reset_stats();
  const ServerStats zeroed = server.stats();
  EXPECT_EQ(zeroed.queries_served, 0);
  EXPECT_EQ(zeroed.batches, 0);
}

TEST(Serve, AsyncHandleCountsQueriesThreadSafely) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 8;
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle handle(server);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 10;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        (void)handle.retrieve(
            w.dataset.test[static_cast<std::size_t>(t) %
                           w.dataset.test.size()],
            5);
      }
    });
  }
  for (auto& c : clients) c.join();
  server.shutdown();
  EXPECT_EQ(handle.query_count(), kClients * kQueriesPerClient);
  EXPECT_EQ(handle.server_stats().queries_served,
            kClients * kQueriesPerClient);
  handle.reset_query_count();
  EXPECT_EQ(handle.query_count(), 0);
}

TEST(Serve, OwningConstructorServesAndDestructs) {
  const auto& w = ServeWorld::instance();
  Rng rng(91);  // same seed as the fixture → same extractor weights
  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, w.spec.geometry, 16, rng);
  auto system =
      std::make_unique<retrieval::RetrievalSystem>(std::move(extractor), 3);
  system->add_all(w.dataset.train);

  RetrievalServer server(std::move(system));
  const auto answer = server.submit(w.dataset.test.front(), 5).get();
  EXPECT_EQ(answer, w.expected.front());
  // Destructor performs the shutdown.
}

TEST(Serve, RejectsDegenerateConfig) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig no_batch;
  no_batch.max_batch = 0;
  EXPECT_THROW(RetrievalServer(*w.system, no_batch), std::logic_error);
  ServerConfig no_queue;
  no_queue.queue_capacity = 0;
  EXPECT_THROW(RetrievalServer(*w.system, no_queue), std::logic_error);
}

}  // namespace
}  // namespace duo::serve
