// RetrievalServer / AsyncBlackBoxHandle: answers must be bitwise identical
// to direct RetrievalSystem::retrieve calls for any client count and
// max_batch; shutdown must drain and fulfill every queued future; the
// bounded queue must apply backpressure without deadlocking; stats must
// account every request. These suites (together with the pipelined
// SparseQuery tests) are the TSAN gate for the serve layer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "metrics/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/async_handle.hpp"
#include "serve/clock.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"
#include "video/synthetic.hpp"

namespace duo::serve {
namespace {

// A small untrained world: serve-layer correctness is about plumbing, not
// retrieval quality, so random extractor weights keep the fixture fast.
struct ServeWorld {
  video::DatasetSpec spec;
  video::Dataset dataset;
  std::unique_ptr<retrieval::RetrievalSystem> system;
  // Direct answers computed before any server touches the extractor.
  std::vector<metrics::RetrievalList> expected;  // for dataset.test, m = 5

  static const ServeWorld& instance() {
    static ServeWorld world = build();
    return world;
  }
  static ServeWorld& mutable_instance() {
    return const_cast<ServeWorld&>(instance());
  }

 private:
  static ServeWorld build() {
    ServeWorld w;
    w.spec = video::DatasetSpec::hmdb51_like(31);
    w.spec.num_classes = 4;
    w.spec.train_per_class = 5;
    w.spec.test_per_class = 3;
    w.spec.geometry = {8, 16, 16, 3};
    w.dataset = video::SyntheticGenerator(w.spec).generate();

    Rng rng(91);
    auto extractor = models::make_extractor(models::ModelKind::kC3D,
                                            w.spec.geometry, 16, rng);
    w.system =
        std::make_unique<retrieval::RetrievalSystem>(std::move(extractor), 3);
    w.system->add_all(w.dataset.train);

    w.expected.reserve(w.dataset.test.size());
    for (const auto& v : w.dataset.test) {
      w.expected.push_back(w.system->retrieve(v, 5));
    }
    return w;
  }
};

TEST(Serve, AnswersMatchDirectRetrieveAcrossBatchSizes) {
  auto& w = ServeWorld::mutable_instance();
  for (const std::size_t max_batch : {1u, 3u, 8u}) {
    ServerConfig cfg;
    cfg.max_batch = max_batch;
    RetrievalServer server(*w.system, cfg);
    std::vector<std::future<metrics::RetrievalList>> futures;
    for (const auto& v : w.dataset.test) {
      futures.push_back(server.submit(v, 5));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get(), w.expected[i])
          << "max_batch=" << max_batch << " query " << i;
    }
    server.shutdown();
  }
}

TEST(Serve, ConcurrentClientsGetBitwiseIdenticalAnswers) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.queue_capacity = 16;
  RetrievalServer server(*w.system, cfg);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t vi = static_cast<std::size_t>(t + q * kClients) %
                               w.dataset.test.size();
        const auto answer = server.submit(w.dataset.test[vi], 5).get();
        if (answer != w.expected[vi]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  server.shutdown();
  EXPECT_EQ(mismatches.load(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, kClients * kQueriesPerClient);
}

TEST(Serve, ShutdownDrainsAndFulfillsEveryQueuedFuture) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.queue_capacity = 64;
  RetrievalServer server(*w.system, cfg);

  std::vector<std::future<metrics::RetrievalList>> futures;
  std::vector<std::size_t> indices;
  for (int r = 0; r < 3; ++r) {
    for (std::size_t i = 0; i < w.dataset.test.size(); ++i) {
      futures.push_back(server.submit(w.dataset.test[i], 5));
      indices.push_back(i);
    }
  }
  // Shut down immediately: most requests are still queued, and all of them
  // must still be answered (graceful drain), with correct results.
  server.shutdown();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), w.expected[indices[i]]) << "future " << i;
  }
}

TEST(Serve, SubmitAfterShutdownFailsTheFuture) {
  auto& w = ServeWorld::mutable_instance();
  RetrievalServer server(*w.system);
  server.shutdown();
  EXPECT_TRUE(server.stopped());
  auto future = server.submit(w.dataset.test.front(), 5);
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(Serve, ShutdownIsIdempotent) {
  auto& w = ServeWorld::mutable_instance();
  RetrievalServer server(*w.system);
  (void)server.submit(w.dataset.test.front(), 5).get();
  server.shutdown();
  server.shutdown();  // second call is a no-op
  EXPECT_TRUE(server.stopped());
}

TEST(Serve, BoundedQueueBackpressureDoesNotDeadlock) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 2;  // tiny: submitters must block and resume
  RetrievalServer server(*w.system, cfg);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 8;
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t vi =
            static_cast<std::size_t>(t) % w.dataset.test.size();
        if (!server.submit(w.dataset.test[vi], 5).get().empty()) {
          answered.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  server.shutdown();
  EXPECT_EQ(answered.load(), kClients * kQueriesPerClient);
}

TEST(Serve, StatsAccountEveryQueryAndBatch) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 4;
  RetrievalServer server(*w.system, cfg);

  const int n = 10;
  std::vector<std::future<metrics::RetrievalList>> futures;
  for (int i = 0; i < n; ++i) {
    futures.push_back(server.submit(
        w.dataset.test[static_cast<std::size_t>(i) % w.dataset.test.size()],
        5));
  }
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, n);
  ASSERT_EQ(stats.batch_size_counts.size(), cfg.max_batch + 1);
  std::int64_t histogram_queries = 0;
  std::int64_t histogram_batches = 0;
  for (std::size_t s = 1; s < stats.batch_size_counts.size(); ++s) {
    histogram_queries +=
        static_cast<std::int64_t>(s) * stats.batch_size_counts[s];
    histogram_batches += stats.batch_size_counts[s];
  }
  EXPECT_EQ(histogram_queries, n);
  EXPECT_EQ(histogram_batches, stats.batches);
  EXPECT_GE(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.max_latency_ms);
  EXPECT_GT(stats.mean_batch_size(), 0.0);

  server.reset_stats();
  const ServerStats zeroed = server.stats();
  EXPECT_EQ(zeroed.queries_served, 0);
  EXPECT_EQ(zeroed.batches, 0);
}

TEST(Serve, AsyncHandleCountsQueriesThreadSafely) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 8;
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle handle(server);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 10;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        (void)handle.retrieve(
            w.dataset.test[static_cast<std::size_t>(t) %
                           w.dataset.test.size()],
            5);
      }
    });
  }
  for (auto& c : clients) c.join();
  server.shutdown();
  EXPECT_EQ(handle.query_count(), kClients * kQueriesPerClient);
  EXPECT_EQ(handle.server_stats().queries_served,
            kClients * kQueriesPerClient);
  handle.reset_query_count();
  EXPECT_EQ(handle.query_count(), 0);
}

TEST(Serve, OwningConstructorServesAndDestructs) {
  const auto& w = ServeWorld::instance();
  Rng rng(91);  // same seed as the fixture → same extractor weights
  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, w.spec.geometry, 16, rng);
  auto system =
      std::make_unique<retrieval::RetrievalSystem>(std::move(extractor), 3);
  system->add_all(w.dataset.train);

  RetrievalServer server(std::move(system));
  const auto answer = server.submit(w.dataset.test.front(), 5).get();
  EXPECT_EQ(answer, w.expected.front());
  // Destructor performs the shutdown.
}

TEST(Serve, RejectsDegenerateConfig) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig no_batch;
  no_batch.max_batch = 0;
  EXPECT_THROW(RetrievalServer(*w.system, no_batch), std::logic_error);
  ServerConfig no_queue;
  no_queue.queue_capacity = 0;
  EXPECT_THROW(RetrievalServer(*w.system, no_queue), std::logic_error);
  ServerConfig no_reservoir;
  no_reservoir.latency_reservoir = 0;
  EXPECT_THROW(RetrievalServer(*w.system, no_reservoir), std::logic_error);
  ServerConfig negative_timeout;
  negative_timeout.batch_timeout_ms = -1.0;
  EXPECT_THROW(RetrievalServer(*w.system, negative_timeout), std::logic_error);
  ServerConfig inverted_ladder;
  inverted_ladder.degrade_high = 0.5;
  inverted_ladder.degrade_low = 0.5;  // exit mark must sit below the entry
  EXPECT_THROW(RetrievalServer(*w.system, inverted_ladder), std::logic_error);
  ServerConfig high_above_full;
  high_above_full.degrade_high = 1.5;  // occupancy share cannot exceed 1
  EXPECT_THROW(RetrievalServer(*w.system, high_above_full), std::logic_error);
}

// Satellite regression: shutdown() raced from several threads used to be a
// double-join hazard; every racer must block until the drain completes and
// queued futures must still be answered. Run under TSan by tsan_check.sh.
TEST(Serve, ConcurrentShutdownIsSafe) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 2;
  RetrievalServer server(*w.system, cfg);

  std::vector<std::future<metrics::RetrievalList>> futures;
  std::vector<std::size_t> indices;
  for (int r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < w.dataset.test.size(); ++i) {
      futures.push_back(server.submit(w.dataset.test[i], 5));
      indices.push_back(i);
    }
  }

  constexpr int kRacers = 4;
  std::vector<std::thread> racers;
  racers.reserve(kRacers);
  for (int t = 0; t < kRacers; ++t) {
    racers.emplace_back([&server] { server.shutdown(); });
  }
  for (auto& r : racers) r.join();
  EXPECT_TRUE(server.stopped());
  // Every racer returned only after the drain: all futures are answered.
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), w.expected[indices[i]]) << "future " << i;
  }
  server.shutdown();  // still idempotent afterwards
}

// Satellite regression: latency stats must stay O(latency_reservoir) however
// many queries the server lives through, with an exact max and count.
TEST(Serve, LatencyStatsUseBoundedReservoir) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.latency_reservoir = 16;
  RetrievalServer server(*w.system, cfg);

  const int n = 60;
  for (int i = 0; i < n; ++i) {
    (void)server
        .submit(w.dataset.test[static_cast<std::size_t>(i) %
                               w.dataset.test.size()],
                5)
        .get();
  }
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.latency_count, n);
  EXPECT_EQ(stats.latency_samples_retained, 16);
  EXPECT_GE(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.max_latency_ms);

  server.reset_stats();
  const ServerStats zeroed = server.stats();
  EXPECT_EQ(zeroed.latency_count, 0);
  EXPECT_EQ(zeroed.latency_samples_retained, 0);
  EXPECT_DOUBLE_EQ(zeroed.max_latency_ms, 0.0);
}

TEST(Serve, SubmitWithDeadlineTimesOutUnderBackpressure) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 1;
  // Every request is slowed down, so the scheduler is predictably busy while
  // the bounded-deadline submission waits on a full queue.
  FaultConfig fc;
  fc.delay_prob = 1.0;
  fc.delay_ms = 150.0;
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle handle(server);

  auto first = handle.submit(w.dataset.test[0], 5);   // drained, sleeping
  auto second = handle.submit(w.dataset.test[1], 5);  // occupies the queue
  EXPECT_EQ(handle.query_count(), 2);

  SubmitOutcome rejected = handle.submit_with_deadline(
      w.dataset.test[2], 5, std::chrono::milliseconds(10));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(handle.query_count(), 2);  // rejection is not billed
  try {
    (void)rejected.future.get();
    FAIL() << "rejected submission should not hold a value";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kOverloaded);
    EXPECT_TRUE(e.retryable());
    EXPECT_FALSE(e.billed());
  }

  // The delayed requests are answered correctly despite the slowdown.
  EXPECT_EQ(first.get(), w.expected[0]);
  EXPECT_EQ(second.get(), w.expected[1]);
  server.shutdown();

  // With room in the queue, the bounded submission is accepted and billed.
  RetrievalServer idle(*w.system);
  AsyncBlackBoxHandle idle_handle(idle);
  SubmitOutcome accepted = idle_handle.submit_with_deadline(
      w.dataset.test[0], 5, std::chrono::milliseconds(250));
  EXPECT_TRUE(accepted.accepted);
  EXPECT_EQ(idle_handle.query_count(), 1);
  EXPECT_EQ(accepted.future.get(), w.expected[0]);
  idle.shutdown();
}

TEST(Serve, SubmitAfterShutdownIsTypedAndUnbilled) {
  auto& w = ServeWorld::mutable_instance();
  RetrievalServer server(*w.system);
  server.shutdown();
  AsyncBlackBoxHandle handle(server);

  auto future = server.submit(w.dataset.test.front(), 5);
  try {
    (void)future.get();
    FAIL() << "submit after shutdown should fail the future";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kShutdown);
    EXPECT_FALSE(e.retryable());
    EXPECT_FALSE(e.billed());
  }

  SubmitOutcome out = handle.submit_with_deadline(
      w.dataset.test.front(), 5, std::chrono::milliseconds(50));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(handle.query_count(), 0);
  EXPECT_THROW((void)out.future.get(), ServeError);
}

// --- Overload-control unit tests (ISSUE 5 tentpole) -----------------------

TEST(Admission, TokenBucketAndRateLimiterAreDeterministic) {
  // 1 token/ms, burst 2: grants are a pure function of the timestamps.
  TokenBucket bucket(1000.0, 2.0);
  EXPECT_DOUBLE_EQ(bucket.try_acquire(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket.try_acquire(0.0), 0.0);
  const double wait = bucket.try_acquire(0.0);  // burst exhausted
  EXPECT_DOUBLE_EQ(wait, 1.0);                  // one token = 1 ms away
  EXPECT_DOUBLE_EQ(bucket.try_acquire(0.5), 0.5);  // still short
  EXPECT_DOUBLE_EQ(bucket.try_acquire(1.0), 0.0);  // refilled
  // Refill never exceeds burst.
  TokenBucket capped(1000.0, 2.0);
  (void)capped.try_acquire(0.0);
  EXPECT_DOUBLE_EQ(capped.try_acquire(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(capped.try_acquire(1000.0), 0.0);
  EXPECT_GT(capped.try_acquire(1000.0), 0.0);  // burst 2, not 1002

  // Identically configured buckets driven by the same timestamps decide
  // identically — the determinism the virtualized-clock tests lean on.
  TokenBucket a(250.0, 3.0);
  TokenBucket b(250.0, 3.0);
  const double stamps[] = {0.0, 1.0, 2.5, 2.5, 7.0, 7.5, 30.0, 30.0, 30.0};
  for (const double t : stamps) {
    EXPECT_DOUBLE_EQ(a.try_acquire(t), b.try_acquire(t)) << "t=" << t;
  }

  // Per-client isolation: draining one client's bucket leaves the other's
  // untouched.
  RateLimiter limiter(1000.0, 1.0);
  EXPECT_DOUBLE_EQ(limiter.try_acquire("alice", 0.0), 0.0);
  EXPECT_GT(limiter.try_acquire("alice", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(limiter.try_acquire("bob", 0.0), 0.0);
  EXPECT_EQ(limiter.clients_seen(), 2);

  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(10.0, 0.5), std::invalid_argument);
}

TEST(Pacer, SharedBucketPacesOnTheVirtualClock) {
  auto clock = std::make_shared<VirtualClock>();
  PacerConfig pcfg;
  pcfg.rate_per_sec = 1000.0;  // 1 token/ms
  pcfg.burst = 1.0;
  Pacer pacer(pcfg, clock);

  for (int i = 0; i < 5; ++i) pacer.acquire();
  EXPECT_EQ(pacer.granted(), 5);
  EXPECT_EQ(pacer.waits(), 4);  // first token from the burst, rest paced
  // sleep_ms on a VirtualClock advances time instead of wall-waiting: the
  // 4 paced grants consumed exactly 4 ms of virtual time.
  EXPECT_DOUBLE_EQ(clock->now_ms(), 4.0);
  EXPECT_DOUBLE_EQ(pacer.waited_ms(), 4.0);
}

TEST(Admission, RejectPolicyTurnsAwayUnderLoadWithRetryAfter) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kReject;
  cfg.reject_retry_after_ms = 7.0;
  // Slow every request down so the queue stays occupied while we pile on.
  FaultConfig fc;
  fc.delay_prob = 1.0;
  fc.delay_ms = 100.0;
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle handle(server);

  // Pigeonhole: at most 1 request in service plus 2 queued within the first
  // delay window, so among 5 rapid submissions at least 2 must be rejected.
  std::vector<SubmitOutcome> outs;
  for (int i = 0; i < 5; ++i) {
    outs.push_back(handle.submit_with_deadline(w.dataset.test[0], 5,
                                               std::chrono::milliseconds(0)));
  }
  int rejected = 0;
  for (auto& out : outs) {
    if (out.accepted) continue;
    ++rejected;
    try {
      (void)out.future.get();
      FAIL() << "rejected submission should not hold a value";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeErrorCode::kOverloaded);
      EXPECT_TRUE(e.retryable());
      EXPECT_TRUE(e.overload());
      EXPECT_FALSE(e.billed());  // never accepted, never billed
      EXPECT_DOUBLE_EQ(e.retry_after_ms(), 7.0);
    }
  }
  EXPECT_GE(rejected, 2);
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_rejected, rejected);
  // Billing identity: accepted == billed == eventually served here.
  EXPECT_EQ(handle.query_count(), 5 - rejected);
  EXPECT_EQ(stats.queries_served, 5 - rejected);
}

TEST(Admission, ShedPolicyEvictsOldestAndKeepsAccountingConsistent) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kShed;
  FaultConfig fc;
  fc.delay_prob = 1.0;
  fc.delay_ms = 100.0;
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle handle(server);

  // Every submission is accepted (and billed); overload is paid by evicting
  // a queued request. None of these carry a deadline, so the deadline-aware
  // policy falls back to oldest-first. With at most 1 in service + 2 queued
  // early on, at least 3 of 6 rapid submissions must shed a predecessor.
  std::vector<SubmitOutcome> outs;
  for (int i = 0; i < 6; ++i) {
    outs.push_back(handle.submit_with_deadline(w.dataset.test[0], 5,
                                               std::chrono::milliseconds(0)));
  }
  for (const auto& out : outs) EXPECT_TRUE(out.accepted);
  EXPECT_EQ(handle.query_count(), 6);
  server.shutdown();

  int shed = 0;
  for (auto& out : outs) {
    try {
      EXPECT_EQ(out.future.get(), w.expected[0]);
    } catch (const ServeError& e) {
      ++shed;
      EXPECT_EQ(e.code(), ServeErrorCode::kShed);
      EXPECT_TRUE(e.retryable());
      EXPECT_TRUE(e.overload());
      EXPECT_TRUE(e.billed());  // accepted requests stay billed when evicted
    }
  }
  EXPECT_GE(shed, 3);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_shed, shed);
  // Every accepted (billed) request ends exactly one way: served or shed.
  EXPECT_EQ(stats.queries_served + stats.requests_shed, 6);
}

TEST(Admission, PerClientRateLimitThrottlesDeterministically) {
  auto& w = ServeWorld::mutable_instance();
  auto clock = std::make_shared<VirtualClock>();
  ServerConfig cfg;
  cfg.clock = clock;
  cfg.client_rate = 1000.0;  // 1 request/ms sustained
  cfg.client_burst = 2.0;
  RetrievalServer server(*w.system, cfg);
  RequestOptions alice;
  alice.client_id = "alice";
  RequestOptions bob;
  bob.client_id = "bob";
  AsyncBlackBoxHandle alice_handle(server, alice);
  AsyncBlackBoxHandle bob_handle(server, bob);

  // Virtual time stands still, so the decisions are exact: burst-of-2 per
  // client, third submission throttled with a 1 ms retry_after.
  std::vector<SubmitOutcome> outs;
  for (int i = 0; i < 3; ++i) {
    outs.push_back(alice_handle.submit_with_deadline(
        w.dataset.test[0], 5, std::chrono::milliseconds(250)));
  }
  EXPECT_TRUE(outs[0].accepted);
  EXPECT_TRUE(outs[1].accepted);
  EXPECT_FALSE(outs[2].accepted);
  try {
    (void)outs[2].future.get();
    FAIL() << "throttled submission should not hold a value";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kThrottled);
    EXPECT_TRUE(e.retryable());
    EXPECT_TRUE(e.overload());
    EXPECT_FALSE(e.billed());
    EXPECT_DOUBLE_EQ(e.retry_after_ms(), 1.0);
  }
  EXPECT_EQ(alice_handle.query_count(), 2);  // throttle unbilled

  // Bob's bucket is untouched by Alice's burst.
  SubmitOutcome bob_out = bob_handle.submit_with_deadline(
      w.dataset.test[1], 5, std::chrono::milliseconds(250));
  EXPECT_TRUE(bob_out.accepted);

  // Advancing virtual time refills Alice's bucket.
  clock->advance_ms(1.0);
  SubmitOutcome refilled = alice_handle.submit_with_deadline(
      w.dataset.test[0], 5, std::chrono::milliseconds(250));
  EXPECT_TRUE(refilled.accepted);

  EXPECT_EQ(outs[0].future.get(), w.expected[0]);
  EXPECT_EQ(outs[1].future.get(), w.expected[0]);
  EXPECT_EQ(bob_out.future.get(), w.expected[1]);
  EXPECT_EQ(refilled.future.get(), w.expected[0]);
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_throttled, 1);
  EXPECT_EQ(stats.queries_served, 4);
}

TEST(Admission, DeadlineExpiredRequestsAreShedBeforeExtraction) {
  auto& w = ServeWorld::mutable_instance();
  RetrievalServer server(*w.system);
  RequestOptions expired_opts;
  expired_opts.ttl_ms = -1.0;  // already expired: deterministically shed
  AsyncBlackBoxHandle doomed(server, expired_opts);
  AsyncBlackBoxHandle healthy(server);

  SubmitOutcome dead = doomed.submit_with_deadline(
      w.dataset.test[0], 5, std::chrono::milliseconds(250));
  EXPECT_TRUE(dead.accepted);  // accepted — and therefore billed
  EXPECT_EQ(doomed.query_count(), 1);
  auto alive = healthy.submit(w.dataset.test[1], 5);

  try {
    (void)dead.future.get();
    FAIL() << "expired request should not be extracted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kExpired);
    EXPECT_TRUE(e.retryable());
    EXPECT_TRUE(e.overload());
    EXPECT_TRUE(e.billed());
  }
  EXPECT_EQ(alive.get(), w.expected[1]);
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_expired, 1);
  // The shed request never reached the extractor: only the live one counts.
  EXPECT_EQ(stats.queries_served, 1);
}

TEST(Circuit, OpensAfterConsecutiveFailuresAndFailsFast) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  FaultConfig fc;
  fc.error_prob = 1.0;  // the victim is effectively down
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle async(server);

  auto clock = std::make_shared<VirtualClock>();
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base = std::chrono::milliseconds(0);
  policy.circuit_threshold = 3;
  policy.circuit_cooldown_ms = 1e9;  // stays open for this test
  ResilientHandle resilient(async, policy, nullptr, clock);

  // Two retrieves burn 4 breaker-relevant failures; the circuit opens at the
  // third consecutive one, mid-second-retrieve.
  EXPECT_THROW((void)resilient.retrieve(w.dataset.test[0], 5), ServeError);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
  EXPECT_THROW((void)resilient.retrieve(w.dataset.test[0], 5), ServeError);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  EXPECT_EQ(resilient.circuit_opens(), 1);

  // Open circuit: fail fast with the typed unavailability error, nothing
  // sent to the victim, nothing billed.
  const std::int64_t billed_before = resilient.queries_billed();
  try {
    (void)resilient.retrieve(w.dataset.test[0], 5);
    FAIL() << "open circuit must fail fast";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kUnavailable);
    EXPECT_FALSE(e.retryable());
    EXPECT_FALSE(e.billed());
  }
  EXPECT_EQ(resilient.queries_billed(), billed_before);
  EXPECT_GE(resilient.fast_failures(), 1);
  server.shutdown();
}

TEST(Circuit, HalfOpenProbeReopensThenClosesOnRecovery) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  FaultConfig fc;
  fc.error_until = 3;  // down for the first 3 requests, healthy after
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle async(server);

  auto clock = std::make_shared<VirtualClock>();
  RetryPolicy policy;
  policy.max_attempts = 1;  // one attempt per retrieve: explicit transitions
  policy.backoff_base = std::chrono::milliseconds(0);
  policy.circuit_threshold = 2;
  policy.circuit_cooldown_ms = 10.0;  // jittered to at most 12.5 ms
  ResilientHandle resilient(async, policy, nullptr, clock);

  // Failures 1 and 2 open the circuit.
  EXPECT_THROW((void)resilient.retrieve(w.dataset.test[0], 5), ServeError);
  EXPECT_THROW((void)resilient.retrieve(w.dataset.test[0], 5), ServeError);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  EXPECT_EQ(resilient.circuit_opens(), 1);

  // Before the cooldown elapses: fail fast.
  EXPECT_THROW((void)resilient.retrieve(w.dataset.test[0], 5), ServeError);
  EXPECT_GE(resilient.fast_failures(), 1);

  // Past the cooldown the next retrieve is the half-open probe; the victim
  // is still down (request index 2 < error_until), so the circuit reopens
  // with a fresh cooldown.
  clock->advance_ms(20.0);
  EXPECT_THROW((void)resilient.retrieve(w.dataset.test[0], 5), ServeError);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  EXPECT_EQ(resilient.circuit_opens(), 2);

  // The victim healed (index 3 ≥ error_until): the probe succeeds with a
  // correct answer and closes the circuit for good.
  clock->advance_ms(20.0);
  EXPECT_EQ(resilient.retrieve(w.dataset.test[0], 5), w.expected[0]);
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
  EXPECT_EQ(resilient.retrieve(w.dataset.test[1], 5), w.expected[1]);
  server.shutdown();

  // Honest split of the failure counters: every real failure was
  // breaker-relevant (no overload pushback in this test).
  EXPECT_EQ(resilient.overloads_seen(), 0);
  EXPECT_EQ(resilient.faults_seen(), 3);
}

TEST(FaultInjection, OutageWindowsShapeTheScheduleWithoutShiftingIt) {
  FaultConfig cfg;
  cfg.error_until = 2;  // down for requests 0..1
  cfg.error_from = 6;   // down again from request 6 on
  const auto plan = FaultInjector::schedule(cfg, 9);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const bool down = i < 2 || i >= 6;
    EXPECT_EQ(plan[i],
              down ? FaultKind::kTransientError : FaultKind::kNone)
        << "request " << i;
  }

  // The outage windows consume one uniform per request like every other
  // decision, so the probabilistic schedule between them is exactly the one
  // the same seed produces with the windows disabled.
  FaultConfig probabilistic;
  probabilistic.error_prob = 0.3;
  probabilistic.drop_prob = 0.2;
  probabilistic.seed = 77;
  FaultConfig windowed = probabilistic;
  windowed.error_until = 3;
  windowed.error_from = 12;
  const auto base = FaultInjector::schedule(probabilistic, 12);
  const auto got = FaultInjector::schedule(windowed, 12);
  for (std::size_t i = 3; i < 12; ++i) {
    EXPECT_EQ(got[i], base[i]) << "request " << i;
  }
}

TEST(FaultInjection, ScheduleIsDeterministicPerSeed) {
  FaultConfig fc;
  fc.error_prob = 0.2;
  fc.delay_prob = 0.1;
  fc.drop_prob = 0.2;
  fc.seed = 42;

  const auto a = FaultInjector::schedule(fc, 300);
  const auto b = FaultInjector::schedule(fc, 300);
  EXPECT_EQ(a, b);

  FaultConfig other = fc;
  other.seed = 43;
  EXPECT_NE(FaultInjector::schedule(other, 300), a);

  // A live injector consumes exactly the previewed schedule, and counts.
  FaultInjector injector(fc);
  std::int64_t injected = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FaultKind k = injector.next();
    EXPECT_EQ(k, a[i]) << "request " << i;
    if (k != FaultKind::kNone) ++injected;
  }
  EXPECT_EQ(injector.decisions(), static_cast<std::int64_t>(a.size()));
  EXPECT_EQ(injector.injected(), injected);
  EXPECT_GT(injected, 0);  // 50% fault rate over 300 draws

  // fatal_at fires at exactly the configured arrival index.
  FaultConfig fatal_only;
  fatal_only.fatal_at = 7;
  const auto fatal_schedule = FaultInjector::schedule(fatal_only, 12);
  for (std::size_t i = 0; i < fatal_schedule.size(); ++i) {
    EXPECT_EQ(fatal_schedule[i],
              i == 7 ? FaultKind::kFatalError : FaultKind::kNone);
  }

  FaultConfig invalid;
  invalid.error_prob = 0.8;
  invalid.drop_prob = 0.5;  // sums past 1
  EXPECT_THROW(FaultInjector{invalid}, std::logic_error);
}

TEST(FaultInjection, ServerSurfacesTypedFaultsAndCountsThem) {
  auto& w = ServeWorld::mutable_instance();

  // Transient-error injection: every future fails retryable-and-billed.
  {
    ServerConfig cfg;
    FaultConfig fc;
    fc.error_prob = 1.0;
    cfg.fault_injector = std::make_shared<FaultInjector>(fc);
    RetrievalServer server(*w.system, cfg);
    const int n = 6;
    for (int i = 0; i < n; ++i) {
      auto future = server.submit(w.dataset.test[0], 5);
      try {
        (void)future.get();
        FAIL() << "injected error should fail the future";
      } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), ServeErrorCode::kTransient);
        EXPECT_TRUE(e.retryable());
        EXPECT_TRUE(e.billed());
      }
    }
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.faults_injected, n);
    EXPECT_EQ(stats.queries_served, 0);
  }

  // Drop injection: the raw future reports a broken promise; the handle
  // translates it into a typed, billed, retryable kDropped.
  {
    ServerConfig cfg;
    FaultConfig fc;
    fc.drop_prob = 1.0;
    cfg.fault_injector = std::make_shared<FaultInjector>(fc);
    RetrievalServer server(*w.system, cfg);
    AsyncBlackBoxHandle handle(server);

    auto raw = server.submit(w.dataset.test[0], 5);
    EXPECT_THROW((void)raw.get(), std::future_error);
    try {
      (void)handle.retrieve(w.dataset.test[0], 5);
      FAIL() << "dropped response should throw";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeErrorCode::kDropped);
      EXPECT_TRUE(e.retryable());
      EXPECT_TRUE(e.billed());
    }
    server.shutdown();
    EXPECT_EQ(server.stats().faults_injected, 2);
  }

  // Delay injection: answers slow down but stay correct and are not faults.
  {
    ServerConfig cfg;
    FaultConfig fc;
    fc.delay_prob = 1.0;
    fc.delay_ms = 2.0;
    cfg.fault_injector = std::make_shared<FaultInjector>(fc);
    RetrievalServer server(*w.system, cfg);
    EXPECT_EQ(server.submit(w.dataset.test[0], 5).get(), w.expected[0]);
    server.shutdown();
    EXPECT_EQ(server.stats().faults_injected, 0);
    EXPECT_EQ(server.stats().queries_served, 1);
  }
}

TEST(Resilient, RetriesThroughMixedFaultsToCorrectAnswers) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  FaultConfig fc;
  fc.error_prob = 0.3;
  fc.drop_prob = 0.2;
  fc.seed = 7;
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle async(server);
  ResilientHandle resilient(async);

  const int rounds = 3;
  std::int64_t logical = 0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < w.dataset.test.size(); ++i) {
      EXPECT_EQ(resilient.retrieve(w.dataset.test[i], 5), w.expected[i])
          << "round " << r << " query " << i;
      ++logical;
    }
  }
  server.shutdown();

  // Half the requests fault, so retries must have happened — and every retry
  // billed the victim: billed count strictly exceeds the logical count.
  EXPECT_GT(resilient.faults_seen(), 0);
  EXPECT_EQ(resilient.retries(), resilient.faults_seen());
  EXPECT_EQ(resilient.queries_billed(), logical + resilient.retries());
  EXPECT_EQ(resilient.query_count(), resilient.queries_billed());
}

TEST(Resilient, GivesUpOnceAttemptsOrBudgetExhaust) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  FaultConfig fc;
  fc.error_prob = 1.0;  // nothing ever succeeds
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle async(server);

  {
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.backoff_base = std::chrono::milliseconds(0);
    ResilientHandle resilient(async, policy);
    try {
      (void)resilient.retrieve(w.dataset.test[0], 5);
      FAIL() << "per-query attempts should exhaust";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeErrorCode::kRetryExhausted);
      EXPECT_FALSE(e.retryable());
      EXPECT_TRUE(e.billed());  // the failed attempts still billed queries
    }
    EXPECT_EQ(resilient.faults_seen(), 3);
    EXPECT_EQ(resilient.retries(), 2);
    EXPECT_EQ(resilient.queries_billed(), 3);
  }

  {
    RetryPolicy policy;
    policy.max_attempts = 100;
    policy.retry_budget = 2;  // handle-wide, tighter than max_attempts
    policy.backoff_base = std::chrono::milliseconds(0);
    ResilientHandle budgeted(async, policy);
    try {
      (void)budgeted.retrieve(w.dataset.test[0], 5);
      FAIL() << "handle-wide retry budget should exhaust";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeErrorCode::kRetryExhausted);
    }
    EXPECT_EQ(budgeted.retries(), 2);  // first try + exactly two retries
  }
  server.shutdown();
}

// ISSUE 8 satellite: observable Pacer state. peek is pure — interleaving
// tokens_available() between acquires never changes a grant decision — and
// it tracks burst consumption and refill on the virtual clock.
TEST(Pacer, TokensAvailableObservesWithoutConsuming) {
  auto clock = std::make_shared<VirtualClock>();
  PacerConfig pcfg;
  pcfg.rate_per_sec = 1000.0;  // 1 token/ms
  pcfg.burst = 4.0;
  Pacer pacer(pcfg, clock);

  // Fresh pacer reports its full burst; peeking twice reads the same value.
  EXPECT_DOUBLE_EQ(pacer.tokens_available(), 4.0);
  EXPECT_DOUBLE_EQ(pacer.tokens_available(), 4.0);

  pacer.acquire();
  pacer.acquire();
  EXPECT_DOUBLE_EQ(pacer.tokens_available(), 2.0);

  // Refill follows the clock, capped at burst.
  clock->advance_ms(1.0);
  EXPECT_DOUBLE_EQ(pacer.tokens_available(), 3.0);
  clock->advance_ms(100.0);
  EXPECT_DOUBLE_EQ(pacer.tokens_available(), 4.0);
}

// ISSUE 8 satellite regression: two sessions sharing one pacer never jointly
// exceed the configured rate. On the virtual clock the joint grant total is
// bounded by burst + rate × elapsed — equivalently, draining 2Q tokens must
// have advanced virtual time by at least (2Q − burst) / rate.
TEST(Pacer, TwoSessionsSharingOnePacerRespectTheJointRate) {
  auto clock = std::make_shared<VirtualClock>();
  PacerConfig pcfg;
  pcfg.rate_per_sec = 500.0;
  pcfg.burst = 4.0;
  auto pacer = std::make_shared<Pacer>(pcfg, clock);

  constexpr int kPerSession = 50;
  std::thread a([&] {
    for (int i = 0; i < kPerSession; ++i) pacer->acquire();
  });
  std::thread b([&] {
    for (int i = 0; i < kPerSession; ++i) pacer->acquire();
  });
  a.join();
  b.join();

  EXPECT_EQ(pacer->granted(), 2 * kPerSession);
  const double elapsed_ms = clock->now_ms();
  const double min_elapsed_ms =
      (2.0 * kPerSession - pcfg.burst) / pcfg.rate_per_sec * 1000.0;
  EXPECT_GE(elapsed_ms, min_elapsed_ms - 1e-6);
  // And the joint admitted volume never exceeded the bucket bound at the
  // final timestamp: granted <= burst + rate * elapsed.
  EXPECT_LE(static_cast<double>(pacer->granted()),
            pcfg.burst + pcfg.rate_per_sec * elapsed_ms / 1000.0 + 1e-6);
  // All tokens were spent the moment the last acquire returned.
  EXPECT_LT(pacer->tokens_available(), 1.0);
}

// ISSUE 8 satellite: per-client breakdown in ServerStats. Counters are
// attributed to the RequestOptions::client_id that caused them, the ledger
// billed == served + faulted + expired + shed holds per client, and the
// slices sum exactly to the global counters.
TEST(Serve, PerClientStatsBreakdownSumsToGlobals) {
  auto& w = ServeWorld::mutable_instance();
  auto clock = std::make_shared<VirtualClock>();
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.clock = clock;
  cfg.client_rate = 1000.0;  // 1 token/ms
  cfg.client_burst = 2.0;
  RetrievalServer server(*w.system, cfg);

  // alice: 2 in-budget requests. bob: 3 back-to-back — the burst admits 2,
  // the third is throttled (virtual time never advances between submits).
  RequestOptions alice;
  alice.client_id = "alice";
  RequestOptions bob;
  bob.client_id = "bob";
  std::vector<std::future<metrics::RetrievalList>> ok;
  ok.push_back(server.submit(w.dataset.test[0], 5, alice));
  ok.push_back(server.submit(w.dataset.test[1], 5, alice));
  ok.push_back(server.submit(w.dataset.test[0], 5, bob));
  ok.push_back(server.submit(w.dataset.test[1], 5, bob));
  auto throttled = server.submit(w.dataset.test[2], 5, bob);
  EXPECT_THROW((void)throttled.get(), ServeError);
  for (auto& f : ok) (void)f.get();
  server.shutdown();

  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.per_client.size(), 2u);
  const ClientStats& a = stats.per_client.at("alice");
  const ClientStats& b = stats.per_client.at("bob");
  EXPECT_EQ(a.served, 2);
  EXPECT_EQ(a.throttled, 0);
  EXPECT_EQ(b.served, 2);
  EXPECT_EQ(b.throttled, 1);
  EXPECT_EQ(a.billed(), 2);
  EXPECT_EQ(b.billed(), 2);

  // Slices sum to globals, including the latency accounting.
  EXPECT_EQ(a.served + b.served, stats.queries_served);
  EXPECT_EQ(a.throttled + b.throttled, stats.requests_throttled);
  EXPECT_EQ(a.latency_count + b.latency_count, stats.latency_count);
  EXPECT_LE(a.p50_latency_ms, a.p95_latency_ms);
  EXPECT_LE(a.p95_latency_ms, a.max_latency_ms);

  server.reset_stats();
  EXPECT_TRUE(server.stats().per_client.empty());
}

// ISSUE 9: the kShed eviction is deadline-aware — under pressure the victim
// is the queued request closest to its deadline (the least useful work
// left), so a long-deadline request survives a storm of short-deadline ones.
// Virtual time stands still, so the short deadlines never *expire*; they are
// only ever closer, which pins the eviction order itself.
TEST(Admission, ShedPolicyEvictsClosestToDeadlineFirst) {
  auto& w = ServeWorld::mutable_instance();
  auto clock = std::make_shared<VirtualClock>();
  ServerConfig cfg;
  cfg.clock = clock;
  cfg.max_batch = 1;
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kShed;
  FaultConfig fc;
  fc.delay_prob = 1.0;
  fc.delay_ms = 100.0;  // wall sleep: keeps the worker busy, clock frozen
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(*w.system, cfg);

  RequestOptions patient;
  patient.ttl_ms = 10000.0;
  RequestOptions urgent;
  urgent.ttl_ms = 100.0;
  AsyncBlackBoxHandle patient_handle(server, patient);
  AsyncBlackBoxHandle urgent_handle(server, urgent);

  // One patient request, then a storm of urgent ones. Every shed scan runs
  // over a full queue (capacity 2), which always holds at least one urgent
  // request — strictly closer to its deadline than the patient one — so the
  // patient request is never the victim.
  SubmitOutcome keeper = patient_handle.submit_with_deadline(
      w.dataset.test[0], 5, std::chrono::milliseconds(0));
  ASSERT_TRUE(keeper.accepted);
  std::vector<SubmitOutcome> storm;
  for (int i = 0; i < 4; ++i) {
    storm.push_back(urgent_handle.submit_with_deadline(
        w.dataset.test[1], 5, std::chrono::milliseconds(0)));
  }
  for (const auto& out : storm) EXPECT_TRUE(out.accepted);
  server.shutdown();

  EXPECT_EQ(keeper.future.get(), w.expected[0]);  // survived every eviction
  int shed = 0;
  for (auto& out : storm) {
    try {
      EXPECT_EQ(out.future.get(), w.expected[1]);
    } catch (const ServeError& e) {
      ++shed;
      EXPECT_EQ(e.code(), ServeErrorCode::kShed);
      EXPECT_TRUE(e.billed());
    }
  }
  EXPECT_GE(shed, 2);  // at most 1 in service + 2 queued among 5 accepted

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_shed, shed);
  EXPECT_EQ(stats.requests_expired, 0);  // frozen clock: closer, not late
  EXPECT_EQ(stats.queries_served + stats.requests_shed, 5);
}

// ISSUE 9 satellite regression: overload pushback (kThrottled / kOverloaded)
// is flow-control, not failure — even a hair-trigger breaker must stay
// closed through arbitrarily long throttle storms, or an AIMD client probing
// past the limit would open its own circuit.
TEST(Circuit, OverloadPushbackNeverTripsTheBreaker) {
  auto& w = ServeWorld::mutable_instance();
  // Deterministic half: a per-client rate limit on the virtual clock. Every
  // retrieve past the burst is throttled at least once and retried after the
  // server's 1 ms hint, with a circuit that opens on a single real failure.
  {
    auto clock = std::make_shared<VirtualClock>();
    ServerConfig cfg;
    cfg.clock = clock;
    cfg.client_rate = 1000.0;
    cfg.client_burst = 1.0;
    RetrievalServer server(*w.system, cfg);
    AsyncBlackBoxHandle async(server);

    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.backoff_base = std::chrono::milliseconds(0);
    policy.circuit_threshold = 1;  // one breaker-relevant failure trips it
    ResilientHandle resilient(async, policy, nullptr, clock);

    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(resilient.retrieve(w.dataset.test[0], 5), w.expected[0]);
    }
    server.shutdown();
    EXPECT_GE(resilient.overloads_seen(), 3);  // only the first ran free
    EXPECT_EQ(resilient.circuit_opens(), 0);
    EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);
    EXPECT_EQ(server.stats().requests_throttled, resilient.overloads_seen());
  }

  // Robust half: admission kReject under real backpressure. The retrieve
  // exhausts its attempts on kOverloaded rejections — and even the terminal
  // kRetryExhausted leaves the breaker untouched.
  {
    ServerConfig cfg;
    cfg.max_batch = 1;
    cfg.queue_capacity = 2;
    cfg.admission = AdmissionPolicy::kReject;
    cfg.reject_retry_after_ms = 1.0;
    FaultConfig fc;
    fc.delay_prob = 1.0;
    fc.delay_ms = 200.0;
    cfg.fault_injector = std::make_shared<FaultInjector>(fc);
    RetrievalServer server(*w.system, cfg);
    AsyncBlackBoxHandle async(server);

    // Saturate: let the first request reach the worker (it holds it for
    // 200 ms), then fill both queue slots — rejections follow for ~150 ms.
    std::vector<std::future<metrics::RetrievalList>> pending;
    pending.push_back(server.submit(w.dataset.test[0], 5));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pending.push_back(server.submit(w.dataset.test[0], 5));
    pending.push_back(server.submit(w.dataset.test[0], 5));

    RetryPolicy policy;
    policy.max_attempts = 2;
    policy.backoff_base = std::chrono::milliseconds(0);
    policy.query_timeout = std::chrono::milliseconds(60000);
    policy.circuit_threshold = 1;
    ResilientHandle resilient(async, policy);
    try {
      (void)resilient.retrieve(w.dataset.test[1], 5);
      FAIL() << "saturated reject server should exhaust the attempts";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeErrorCode::kRetryExhausted);
    }
    EXPECT_EQ(resilient.overloads_seen(), 2);
    EXPECT_EQ(resilient.circuit_opens(), 0);
    EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);

    for (auto& f : pending) EXPECT_EQ(f.get(), w.expected[0]);
    server.shutdown();
  }
}

// ISSUE 9 satellite: batch_timeout_ms trades a bounded wall wait for fuller
// batches. A full batch never waits; the timeout only coalesces.
TEST(Serve, BatchTimeoutCoalescesFullBatchesDeterministically) {
  auto& w = ServeWorld::mutable_instance();
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_timeout_ms = 10000.0;  // absurd on purpose: full batch = no wait
  RetrievalServer server(*w.system, cfg);

  std::vector<std::future<metrics::RetrievalList>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        server.submit(w.dataset.test[static_cast<std::size_t>(i) %
                                     w.dataset.test.size()],
                      5));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), w.expected[i % w.dataset.test.size()]);
  }
  server.shutdown();

  // However submits interleave with the scheduler, the wait-for-full-batch
  // predicate guarantees a single tick drained all four.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, 4);
  EXPECT_EQ(stats.batches, 1);
  ASSERT_EQ(stats.batch_size_counts.size(), 5u);
  EXPECT_EQ(stats.batch_size_counts[4], 1);
}

TEST(Serve, BatchTimeoutDrainsPartialBatchAndShutsDownPromptly) {
  auto& w = ServeWorld::mutable_instance();
  // A lone request is served after at most the timeout — the knob bounds
  // added latency, it never strands work.
  {
    ServerConfig cfg;
    cfg.max_batch = 4;
    cfg.batch_timeout_ms = 5.0;
    RetrievalServer server(*w.system, cfg);
    EXPECT_EQ(server.submit(w.dataset.test[0], 5).get(), w.expected[0]);
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.batches, 1);
    EXPECT_EQ(stats.batch_size_counts[1], 1);
  }
  // Shutdown interrupts the coalescing wait instead of sitting it out.
  {
    ServerConfig cfg;
    cfg.max_batch = 4;
    cfg.batch_timeout_ms = 60000.0;
    RetrievalServer server(*w.system, cfg);
    auto future = server.submit(w.dataset.test[1], 5);
    const auto t0 = std::chrono::steady_clock::now();
    server.shutdown();
    EXPECT_EQ(future.get(), w.expected[1]);
    const double drained_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(drained_ms, 30000.0);  // far below the 60 s coalescing wait
  }
}

// ISSUE 9 tentpole: the AIMD pacer discovers an undisclosed server-side rate
// limit. The whole loop runs on one virtual clock, so the trajectory is a
// pure function of the configs — asserted by running the scenario twice.
TEST(Aimd, PacerConvergesIntoTheLimitBand) {
  auto& w = ServeWorld::mutable_instance();
  struct Run {
    double elapsed_ms = 0.0;
    double final_rate = 0.0;
    std::int64_t granted = 0;
    std::int64_t throttled = 0;
    std::int64_t billed = 0;
    std::int64_t increases = 0;
    std::int64_t decreases = 0;
  };
  const auto run_once = [&]() {
    auto clock = std::make_shared<VirtualClock>();
    ServerConfig cfg;
    cfg.clock = clock;
    cfg.client_rate = 50.0;  // the undisclosed limit under discovery
    cfg.client_burst = 2.0;
    RetrievalServer server(*w.system, cfg);
    AsyncBlackBoxHandle async(server);

    PacerConfig pcfg;
    pcfg.rate_per_sec = 5.0;  // start far below the limit
    pcfg.burst = 1.0;
    pcfg.aimd = true;
    pcfg.aimd_increase = 100.0;
    pcfg.aimd_decrease = 0.5;
    auto pacer = std::make_shared<Pacer>(pcfg, clock);

    RetryPolicy policy;
    policy.max_attempts = 10;
    policy.backoff_base = std::chrono::milliseconds(0);
    policy.query_timeout = std::chrono::milliseconds(10000);
    ResilientHandle resilient(async, policy, pacer, clock);

    constexpr int kQueries = 400;
    for (int i = 0; i < kQueries; ++i) {
      EXPECT_EQ(resilient.retrieve(w.dataset.test[0], 5), w.expected[0]);
    }
    server.shutdown();

    Run out;
    out.elapsed_ms = clock->now_ms();
    out.final_rate = pacer->current_rate();
    out.granted = pacer->granted();
    out.throttled = server.stats().requests_throttled;
    out.billed = resilient.queries_billed();
    out.increases = pacer->rate_increases();
    out.decreases = pacer->rate_decreases();
    return out;
  };

  const Run run = run_once();
  // Throttles are unbilled and retried: each logical query bills exactly
  // one accepted submission.
  EXPECT_EQ(run.billed, 400);
  EXPECT_EQ(run.granted, run.billed + run.throttled);
  // The server bucket bounds the admitted volume by burst + rate·T — the
  // client can discover the limit but never beat it.
  EXPECT_LE(400.0, 2.0 + 50.0 * run.elapsed_ms / 1000.0 + 1e-6);
  // And the probe is efficient: at least half the limit sustained end to
  // end (a static pacer hand-tuned to 50/s would take 8 s; AIMD pays the
  // sawtooth, not an order of magnitude).
  EXPECT_LE(run.elapsed_ms, 16000.0);
  // The sawtooth has settled into the band around the true 50/s limit.
  EXPECT_GE(run.final_rate, 20.0);
  EXPECT_LE(run.final_rate, 70.0);
  EXPECT_GT(run.increases, 0);
  EXPECT_GT(run.decreases, 0);
  EXPECT_GT(run.throttled, 0);  // discovery requires touching the limit

  // Bitwise-reproducible: the whole closed loop is deterministic on the
  // virtual clock, decision for decision.
  const Run again = run_once();
  EXPECT_DOUBLE_EQ(again.elapsed_ms, run.elapsed_ms);
  EXPECT_DOUBLE_EQ(again.final_rate, run.final_rate);
  EXPECT_EQ(again.granted, run.granted);
  EXPECT_EQ(again.throttled, run.throttled);
  EXPECT_EQ(again.increases, run.increases);
  EXPECT_EQ(again.decreases, run.decreases);

  // Hint seeding: a wildly optimistic starting rate is pulled to the limit
  // by the first retry_after hint (rate <- min(beta·r, 1000/hint)) instead
  // of decaying geometrically through dozens of halvings.
  {
    auto clock = std::make_shared<VirtualClock>();
    ServerConfig cfg;
    cfg.clock = clock;
    cfg.client_rate = 50.0;
    cfg.client_burst = 2.0;
    RetrievalServer server(*w.system, cfg);
    AsyncBlackBoxHandle async(server);
    PacerConfig pcfg;
    pcfg.rate_per_sec = 100000.0;
    pcfg.burst = 1.0;
    pcfg.aimd = true;
    auto pacer = std::make_shared<Pacer>(pcfg, clock);
    RetryPolicy policy;
    policy.max_attempts = 10;
    policy.backoff_base = std::chrono::milliseconds(0);
    ResilientHandle resilient(async, policy, pacer, clock);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(resilient.retrieve(w.dataset.test[0], 5), w.expected[0]);
    }
    server.shutdown();
    EXPECT_GE(pacer->rate_decreases(), 1);
    EXPECT_LE(pacer->current_rate(), 60.0);  // one round trip, not ~11 halvings
  }
}

// ISSUE 9 acceptance (serve half): the server drops the limit mid-run and
// the AIMD loop re-converges into the new band without operator input.
TEST(Aimd, ReconvergesAfterAMidRunLimitDrop) {
  auto& w = ServeWorld::mutable_instance();
  auto clock = std::make_shared<VirtualClock>();
  ServerConfig cfg;
  cfg.clock = clock;
  cfg.client_rate = 80.0;
  cfg.client_burst = 2.0;
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle async(server);

  PacerConfig pcfg;
  pcfg.rate_per_sec = 5.0;
  pcfg.burst = 1.0;
  pcfg.aimd = true;
  pcfg.aimd_increase = 100.0;
  auto pacer = std::make_shared<Pacer>(pcfg, clock);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_base = std::chrono::milliseconds(0);
  policy.query_timeout = std::chrono::milliseconds(10000);
  ResilientHandle resilient(async, policy, pacer, clock);

  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(resilient.retrieve(w.dataset.test[0], 5), w.expected[0]);
  }
  EXPECT_GE(pacer->current_rate(), 32.0);  // converged around 80/s
  EXPECT_LE(pacer->current_rate(), 112.0);
  EXPECT_DOUBLE_EQ(server.client_rate(), 80.0);

  // The operator tightens the limit on the live server: existing buckets
  // settle their accrual at the old rate, then refill at the new one.
  server.set_client_rate(20.0);
  EXPECT_DOUBLE_EQ(server.client_rate(), 20.0);
  const double t1 = clock->now_ms();
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(resilient.retrieve(w.dataset.test[0], 5), w.expected[0]);
  }
  const double phase2_ms = clock->now_ms() - t1;
  server.shutdown();

  // Admitted volume in phase 2 is bounded by the new limit...
  EXPECT_LE(300.0, 2.0 + 20.0 * phase2_ms / 1000.0 + 1e-6);
  // ...and the loop re-discovered it rather than crawling: ≥ half the new
  // limit sustained, with the final rate inside the new band.
  EXPECT_LE(phase2_ms, 30000.0);
  // Sawtooth band around the new 20/s limit: a decrease lands between
  // beta·limit and the hint-capped estimate, an increase probes just past.
  EXPECT_GE(pacer->current_rate(), 8.0);
  EXPECT_LE(pacer->current_rate(), 42.0);
}

// ISSUE 9 satellite: two handles sharing one AIMD pacer treat the discovered
// limit as a joint budget — the pacer's bucket admits their union, so the
// pair can never jointly exceed what one client is allowed.
TEST(Aimd, TwoHandlesSharingOnePacerRespectTheJointLimit) {
  auto& w = ServeWorld::mutable_instance();
  auto clock = std::make_shared<VirtualClock>();
  ServerConfig cfg;
  cfg.clock = clock;
  cfg.client_rate = 50.0;
  cfg.client_burst = 2.0;
  RetrievalServer server(*w.system, cfg);
  RequestOptions opts;
  opts.client_id = "joint";  // both handles bill the same server bucket
  AsyncBlackBoxHandle async_a(server, opts);
  AsyncBlackBoxHandle async_b(server, opts);

  PacerConfig pcfg;
  pcfg.rate_per_sec = 5.0;
  pcfg.burst = 1.0;
  pcfg.aimd = true;
  pcfg.aimd_increase = 100.0;
  auto pacer = std::make_shared<Pacer>(pcfg, clock);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.backoff_base = std::chrono::milliseconds(0);
  policy.query_timeout = std::chrono::milliseconds(10000);
  ResilientHandle handle_a(async_a, policy, pacer, clock);
  ResilientHandle handle_b(async_b, policy, pacer, clock);

  constexpr int kPerHandle = 150;
  std::atomic<int> mismatches{0};
  const auto drive = [&](ResilientHandle& handle) {
    for (int i = 0; i < kPerHandle; ++i) {
      if (handle.retrieve(w.dataset.test[0], 5) != w.expected[0]) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::thread ta([&] { drive(handle_a); });
  std::thread tb([&] { drive(handle_b); });
  ta.join();
  tb.join();
  server.shutdown();
  EXPECT_EQ(mismatches.load(), 0);

  // Each logical query billed exactly once across both handles...
  const std::int64_t billed =
      handle_a.queries_billed() + handle_b.queries_billed();
  EXPECT_EQ(billed, 2 * kPerHandle);
  EXPECT_EQ(server.stats().queries_served, 2 * kPerHandle);
  // ...within the joint bucket bound, whatever the thread interleaving.
  const double elapsed_ms = clock->now_ms();
  EXPECT_LE(static_cast<double>(billed),
            2.0 + 50.0 * elapsed_ms / 1000.0 + 1e-6);
  // Every pacer grant became exactly one submission: accepted or throttled.
  EXPECT_EQ(pacer->granted(),
            billed + server.stats().requests_throttled);
  // The shared estimate landed near the per-client limit, not 2x it.
  EXPECT_GE(pacer->current_rate(), 10.0);
  EXPECT_LE(pacer->current_rate(), 125.0);
}

// ISSUE 9: AIMD knob validation and the non-AIMD no-op contract.
TEST(Aimd, ConfigIsValidatedAndStaticPacersNeverAdapt) {
  auto clock = std::make_shared<VirtualClock>();
  const auto invalid = [&](auto mutate) {
    PacerConfig pcfg;
    pcfg.rate_per_sec = 10.0;
    pcfg.aimd = true;
    mutate(pcfg);
    EXPECT_THROW(Pacer(pcfg, clock), std::invalid_argument);
  };
  invalid([](PacerConfig& c) { c.aimd_increase = 0.0; });
  invalid([](PacerConfig& c) { c.aimd_decrease = 0.0; });
  invalid([](PacerConfig& c) { c.aimd_decrease = 1.0; });
  invalid([](PacerConfig& c) { c.aimd_floor = 0.0; });
  invalid([](PacerConfig& c) { c.aimd_ceiling = 0.05; });  // below the floor

  // A starting rate outside [floor, ceiling] is clamped, not rejected.
  PacerConfig clamped;
  clamped.rate_per_sec = 1e9;
  clamped.aimd = true;
  clamped.aimd_ceiling = 100.0;
  EXPECT_DOUBLE_EQ(Pacer(clamped, clock).current_rate(), 100.0);

  // Feedback on a static pacer is a no-op: the configured rate is the rate.
  PacerConfig pcfg;
  pcfg.rate_per_sec = 10.0;
  Pacer pacer(pcfg, clock);
  pacer.on_success();
  pacer.on_overload(5.0);
  EXPECT_DOUBLE_EQ(pacer.current_rate(), 10.0);
  EXPECT_EQ(pacer.rate_increases(), 0);
  EXPECT_EQ(pacer.rate_decreases(), 0);

  // AIMD floor: decreases saturate instead of starving the client forever.
  PacerConfig floored;
  floored.rate_per_sec = 1.0;
  floored.aimd = true;
  floored.aimd_floor = 0.5;
  Pacer adaptive(floored, clock);
  for (int i = 0; i < 10; ++i) adaptive.on_overload(0.0);
  EXPECT_DOUBLE_EQ(adaptive.current_rate(), 0.5);
}

// ISSUE 9 tentpole (server half): under sustained queue pressure the server
// degrades IVF search (nprobe -> degraded_nprobe) with hysteresis, accounts
// the stint, and restores the index on drain. A flat index has no cheaper
// mode, so the ladder never pretends to degrade it.
TEST(Serve, DegradationLadderEngagesUnderPressureAndRestores) {
  // Local IVF world: trained via add_all (which finalizes the index).
  video::DatasetSpec spec = video::DatasetSpec::hmdb51_like(77);
  spec.num_classes = 2;
  spec.train_per_class = 8;
  spec.test_per_class = 1;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();
  Rng rng(5);
  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, spec.geometry, 16, rng);
  retrieval::IndexConfig icfg;
  icfg.kind = retrieval::IndexKind::kIvf;
  icfg.num_nodes = 2;
  icfg.num_cells = 4;
  icfg.nprobe = 4;
  icfg.degraded_nprobe = 1;
  retrieval::RetrievalSystem system(std::move(extractor), icfg);
  system.add_all(dataset.train);

  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 8;
  cfg.degrade_high = 0.5;   // enter at tick-start occupancy >= 4
  cfg.degrade_low = 0.125;  // leave once it drains to <= 1
  FaultConfig fc;
  fc.delay_prob = 1.0;
  fc.delay_ms = 60.0;  // each served request holds the worker 60 ms
  cfg.fault_injector = std::make_shared<FaultInjector>(fc);
  RetrievalServer server(system, cfg);

  std::vector<std::future<metrics::RetrievalList>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.submit(dataset.test[0], 3));
  }
  for (auto& f : futures) (void)f.get();  // answers exist; recall may differ
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.degrade_entries, 1);
  EXPECT_GT(stats.degraded_ms, 0.0);
  EXPECT_GE(stats.degraded_served, 1);
  EXPECT_FALSE(stats.degraded_now);
  // Drained server leaves the index exactly as it found it.
  EXPECT_FALSE(system.index_degraded());
  // Every scheduler tick recorded its tick-start occupancy (no expiries in
  // this run, so ticks == batches), and some tick saw the queue half full.
  ASSERT_EQ(stats.occupancy_deciles.size(), 11u);
  const std::int64_t ticks =
      std::accumulate(stats.occupancy_deciles.begin(),
                      stats.occupancy_deciles.end(), std::int64_t{0});
  EXPECT_EQ(ticks, stats.batches);
  std::int64_t high_ticks = 0;
  for (std::size_t d = 5; d < stats.occupancy_deciles.size(); ++d) {
    high_ticks += stats.occupancy_deciles[d];
  }
  EXPECT_GE(high_ticks, 1);

  // Flat index under identical pressure: set_degraded is declined, so the
  // ladder never reports an entry and the recall contract stays exact.
  auto& w = ServeWorld::mutable_instance();
  ServerConfig flat_cfg;
  flat_cfg.max_batch = 1;
  flat_cfg.queue_capacity = 4;
  flat_cfg.degrade_high = 0.5;
  FaultConfig flat_fc;
  flat_fc.delay_prob = 1.0;
  flat_fc.delay_ms = 30.0;
  flat_cfg.fault_injector = std::make_shared<FaultInjector>(flat_fc);
  RetrievalServer flat_server(*w.system, flat_cfg);
  std::vector<std::future<metrics::RetrievalList>> flat_futures;
  for (int i = 0; i < 5; ++i) {
    flat_futures.push_back(flat_server.submit(w.dataset.test[0], 5));
  }
  for (auto& f : flat_futures) EXPECT_EQ(f.get(), w.expected[0]);
  flat_server.shutdown();
  const ServerStats flat_stats = flat_server.stats();
  EXPECT_EQ(flat_stats.degrade_entries, 0);
  EXPECT_DOUBLE_EQ(flat_stats.degraded_ms, 0.0);
  EXPECT_FALSE(w.system->index_degraded());
}

// ISSUE 9: the throttle hint histogram. Virtual time stands still, so the
// third submission's hint is exactly 1 ms — bucket 0 by definition.
TEST(Admission, RetryAfterHintsLandInTheExpectedHistogramBucket) {
  auto& w = ServeWorld::mutable_instance();
  auto clock = std::make_shared<VirtualClock>();
  ServerConfig cfg;
  cfg.clock = clock;
  cfg.client_rate = 1000.0;
  cfg.client_burst = 2.0;
  RetrievalServer server(*w.system, cfg);
  AsyncBlackBoxHandle handle(server);
  std::vector<SubmitOutcome> outs;
  for (int i = 0; i < 3; ++i) {
    outs.push_back(handle.submit_with_deadline(w.dataset.test[0], 5,
                                               std::chrono::milliseconds(250)));
  }
  EXPECT_FALSE(outs[2].accepted);
  EXPECT_EQ(outs[0].future.get(), w.expected[0]);
  EXPECT_EQ(outs[1].future.get(), w.expected[0]);
  server.shutdown();

  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.retry_after_buckets.size(), 12u);
  EXPECT_EQ(stats.retry_after_buckets[0], 1);  // the exact 1 ms hint
  EXPECT_EQ(std::accumulate(stats.retry_after_buckets.begin(),
                            stats.retry_after_buckets.end(), std::int64_t{0}),
            stats.requests_throttled + stats.requests_rejected);
}

}  // namespace
}  // namespace duo::serve
