#include <gtest/gtest.h>

#include <cmath>

#include "attack/sparse_query.hpp"
#include "baselines/vanilla.hpp"
#include "fixtures.hpp"
#include "serve/async_handle.hpp"
#include "serve/server.hpp"

namespace duo::attack {
namespace {

using duo::testing::TinyWorld;

Perturbation small_support(const video::Video& v, std::uint64_t seed,
                           float theta = 10.0f) {
  Rng rng(seed);
  Perturbation p = baselines::random_support(v.geometry(), 150, 3, rng);
  // Give θ some signal on the support.
  Tensor noise =
      Tensor::uniform(v.geometry().tensor_shape(), -theta, theta, rng);
  p.magnitude() = noise * p.pixel_mask() * p.frame_mask();
  return p;
}

TEST(SparseQuery, THistoryIsMonotoneNonIncreasing) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[14];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);

  SparseQueryConfig cfg;
  cfg.iter_numQ = 40;
  cfg.tau = 30.0f;
  cfg.m = 8;
  const auto result =
      sparse_query(v, small_support(v, 3), handle, ctx, cfg);
  ASSERT_GE(result.t_history.size(), 2u);
  for (std::size_t i = 1; i < result.t_history.size(); ++i) {
    EXPECT_LE(result.t_history[i], result.t_history[i - 1] + 1e-12);
  }
  EXPECT_DOUBLE_EQ(result.t_history.back(), result.final_t);
}

TEST(SparseQuery, NeverPerturbsOutsideSupport) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[2];
  const auto& vt = w.dataset.train[16];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);

  const Perturbation p = small_support(v, 4);
  SparseQueryConfig cfg;
  cfg.iter_numQ = 30;
  cfg.tau = 30.0f;
  cfg.m = 8;
  const auto result = sparse_query(v, p, handle, ctx, cfg);

  const Tensor support = p.pixel_mask() * p.frame_mask();
  const Tensor delta = result.v_adv.data() - v.data();
  for (std::int64_t i = 0; i < delta.size(); ++i) {
    if (support[i] < 0.5f) {
      EXPECT_FLOAT_EQ(delta[i], 0.0f) << "coordinate " << i;
    }
  }
}

TEST(SparseQuery, RespectsLinfBudgetAndPixelRange) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[3];
  const auto& vt = w.dataset.train[17];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);

  SparseQueryConfig cfg;
  cfg.iter_numQ = 50;
  cfg.tau = 12.0f;
  cfg.m = 8;
  const auto result = sparse_query(v, small_support(v, 5, 12.0f), handle, ctx, cfg);

  const Tensor delta = result.v_adv.data() - v.data();
  // Quantization rounds to the nearest integer, so allow +0.5.
  EXPECT_LE(delta.norm_linf(), cfg.tau + 0.5f);
  EXPECT_GE(result.v_adv.data().min(), 0.0f);
  EXPECT_LE(result.v_adv.data().max(), 255.0f);
}

TEST(SparseQuery, CountsOneQueryPerEvaluation) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[4];
  const auto& vt = w.dataset.train[19];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);
  const std::int64_t before = handle.query_count();

  SparseQueryConfig cfg;
  cfg.iter_numQ = 20;
  cfg.m = 8;
  const auto result = sparse_query(v, small_support(v, 6), handle, ctx, cfg);
  EXPECT_EQ(result.queries_spent, handle.query_count() - before);
  // At most 2 candidate evaluations per iteration + the initial one.
  EXPECT_LE(result.queries_spent, 2 * cfg.iter_numQ + 1);
  EXPECT_GE(result.queries_spent, cfg.iter_numQ / 2);
}

TEST(SparseQuery, EmptySupportReturnsInitialVideo) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[5];
  const auto& vt = w.dataset.train[21];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);

  Perturbation p(v.geometry());
  p.pixel_mask().fill(0.0f);  // nothing selectable
  SparseQueryConfig cfg;
  cfg.iter_numQ = 10;
  const auto result = sparse_query(v, p, handle, ctx, cfg);
  EXPECT_TRUE(result.v_adv.data().allclose(v.data()));
  EXPECT_EQ(result.queries_spent, 1);  // only the initial T evaluation
}

TEST(SparseQuery, PatienceStopsEarly) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[6];
  const auto& vt = w.dataset.train[23];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);

  SparseQueryConfig stop_cfg;
  stop_cfg.iter_numQ = 200;
  stop_cfg.patience = 5;
  stop_cfg.m = 8;
  const auto result = sparse_query(v, small_support(v, 7), handle, ctx, stop_cfg);
  EXPECT_LT(static_cast<int>(result.t_history.size()), stop_cfg.iter_numQ);
}

// The incremental quantized working copy must behave exactly like the old
// full `quantized(v_adv)` per query: every candidate the victim sees is
// integral, re-quantizing the final video is a no-op, and the trajectory is
// reproducible run-to-run.
TEST(SparseQuery, EveryVictimQueryIsQuantized) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[8];
  const auto& vt = w.dataset.train[18];

  std::int64_t checked = 0;
  retrieval::BlackBoxHandle handle(
      [&](const video::Video& q, std::size_t m) {
        for (const float x : q.data().flat()) {
          EXPECT_EQ(x, std::round(x)) << "victim saw a non-integral pixel";
        }
        ++checked;
        return w.victim->retrieve(q, m);
      });
  const auto ctx = make_objective_context(handle, v, vt, 8);

  SparseQueryConfig cfg;
  cfg.iter_numQ = 25;
  cfg.tau = 30.0f;
  cfg.m = 8;
  const auto result = sparse_query(v, small_support(v, 9), handle, ctx, cfg);
  EXPECT_GT(checked, 2);  // context fetches + per-step candidates

  // The returned video is already quantized: re-rounding changes nothing.
  for (const float x : result.v_adv.data().flat()) {
    EXPECT_EQ(x, std::round(x));
  }
}

TEST(SparseQuery, TrajectoryIsReproducible) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[9];
  const auto& vt = w.dataset.train[20];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);

  SparseQueryConfig cfg;
  cfg.iter_numQ = 30;
  cfg.tau = 20.0f;
  cfg.m = 8;
  const auto a = sparse_query(v, small_support(v, 10), handle, ctx, cfg);
  const auto b = sparse_query(v, small_support(v, 10), handle, ctx, cfg);
  ASSERT_EQ(a.t_history.size(), b.t_history.size());
  for (std::size_t i = 0; i < a.t_history.size(); ++i) {
    EXPECT_EQ(a.t_history[i], b.t_history[i]) << "step " << i;
  }
  EXPECT_TRUE(a.v_adv.data().allclose(b.v_adv.data(), 0.0f));
  EXPECT_EQ(a.queries_spent, b.queries_spent);
}

// Pipelined mode drives the victim through the serve layer with both ±ε
// candidates in flight, but must replay the serial acceptance sequence
// exactly: same t_history, bitwise-identical final video. Its query count
// may only exceed the serial one (speculative forwards are counted).
TEST(SparseQueryPipelined, MatchesSerialBitwise) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[11];
  const auto& vt = w.dataset.train[24];
  const Perturbation p = small_support(v, 12);

  SparseQueryConfig cfg;
  cfg.iter_numQ = 30;
  cfg.tau = 30.0f;
  cfg.m = 8;

  // Serial reference first — the server must not own the extractor yet.
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8);
  const auto serial = sparse_query(v, p, handle, ctx, cfg);

  for (const std::size_t max_batch : {1u, 4u}) {
    serve::ServerConfig scfg;
    scfg.max_batch = max_batch;
    serve::RetrievalServer server(*w.victim, scfg);
    serve::AsyncBlackBoxHandle async(server);
    const auto actx = make_objective_context(async, v, vt, 8);
    EXPECT_EQ(actx.list_v, ctx.list_v);
    EXPECT_EQ(actx.list_vt, ctx.list_vt);

    const auto piped = sparse_query_pipelined(v, p, async, actx, cfg);
    server.shutdown();

    ASSERT_EQ(piped.t_history.size(), serial.t_history.size())
        << "max_batch=" << max_batch;
    for (std::size_t i = 0; i < serial.t_history.size(); ++i) {
      EXPECT_EQ(piped.t_history[i], serial.t_history[i])
          << "max_batch=" << max_batch << " step " << i;
    }
    EXPECT_EQ(piped.final_t, serial.final_t);
    ASSERT_EQ(piped.v_adv.data().size(), serial.v_adv.data().size());
    for (std::int64_t i = 0; i < serial.v_adv.data().size(); ++i) {
      ASSERT_EQ(piped.v_adv.data()[i], serial.v_adv.data()[i])
          << "max_batch=" << max_batch << " flat index " << i;
    }
    // Honest accounting: speculation can only add queries, and the async
    // handle's count is the ground truth for queries_spent.
    EXPECT_GE(piped.queries_spent, serial.queries_spent);
    EXPECT_EQ(piped.queries_spent + 2 /*context fetches*/,
              async.query_count());
  }
}

TEST(SparseQueryPipelined, EmptySupportSpendsOneQuery) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[12];
  const auto& vt = w.dataset.train[26];

  serve::RetrievalServer server(*w.victim);
  serve::AsyncBlackBoxHandle async(server);
  const auto ctx = make_objective_context(async, v, vt, 8);

  Perturbation p(v.geometry());
  p.pixel_mask().fill(0.0f);
  SparseQueryConfig cfg;
  cfg.iter_numQ = 10;
  const auto result = sparse_query_pipelined(v, p, async, ctx, cfg);
  server.shutdown();
  EXPECT_TRUE(result.v_adv.data().allclose(v.data()));
  EXPECT_EQ(result.queries_spent, 1);
}

TEST(ObjectiveContext, TLossUsesMarginAndSimilarity) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[7];
  const auto& vt = w.dataset.train[25];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = make_objective_context(handle, v, vt, 8, 1.0);

  // T(v) should be high (list matches R(v) perfectly, differs from R(v_t));
  // T(v_t) should be low.
  const double t_self = t_loss(handle, v, ctx);
  const double t_target = t_loss(handle, vt, ctx);
  EXPECT_GT(t_self, t_target);

  // From-list variant agrees with the queried variant.
  const auto list = w.victim->retrieve(v, 8);
  EXPECT_DOUBLE_EQ(t_loss_from_list(list, ctx), t_self);
}

}  // namespace
}  // namespace duo::attack
