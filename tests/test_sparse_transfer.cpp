#include <gtest/gtest.h>

#include "attack/sparse_transfer.hpp"
#include "fixtures.hpp"

namespace duo::attack {
namespace {

using duo::testing::TinyWorld;

SparseTransferConfig quick_config() {
  SparseTransferConfig cfg;
  cfg.k = 200;
  cfg.n = 3;
  cfg.tau = 30.0f;
  cfg.outer_iterations = 3;
  cfg.theta_steps = 6;
  return cfg;
}

TEST(SparseTransfer, OutputSatisfiesAllConstraints) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[10];
  const auto cfg = quick_config();
  const auto result = sparse_transfer(v, vt, *w.surrogate, cfg);
  const Perturbation& p = result.perturbation;

  // 1ᵀI = k (within the selected frames).
  EXPECT_EQ(p.selected_pixels(), cfg.k);
  // ‖F‖₂,₀ = n.
  EXPECT_EQ(p.selected_frames(), cfg.n);
  // ‖θ‖∞ ≤ τ.
  EXPECT_LE(p.magnitude().norm_linf(), cfg.tau + 1e-4f);
  // φ respects all three masks simultaneously.
  const Tensor phi = p.combined();
  EXPECT_LE(phi.norm_l0(), cfg.k);
  const std::int64_t fe = v.geometry().elements_per_frame();
  EXPECT_LE(phi.norm_l0(0.0f), cfg.k);
  std::int64_t frames_touched = 0;
  for (std::int64_t f = 0; f < v.geometry().frames; ++f) {
    for (std::int64_t e = 0; e < fe; ++e) {
      if (phi[f * fe + e] != 0.0f) {
        ++frames_touched;
        break;
      }
    }
  }
  EXPECT_LE(frames_touched, cfg.n);
}

TEST(SparseTransfer, MovesTowardTargetInSurrogateFeatureSpace) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[2];
  const auto& vt = w.dataset.train[20];
  const auto result = sparse_transfer(v, vt, *w.surrogate, quick_config());

  const Tensor f_target = w.surrogate->extract(vt);
  const Tensor f_before = w.surrogate->extract(v);
  const video::Video adv = result.perturbation.apply_to(v);
  const Tensor f_after = w.surrogate->extract(adv);

  const double d_before = (f_before - f_target).norm_l2();
  const double d_after = (f_after - f_target).norm_l2();
  EXPECT_LT(d_after, d_before);
}

TEST(SparseTransfer, LossHistoryDecreasesOverall) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[3];
  const auto& vt = w.dataset.train[15];
  const auto result = sparse_transfer(v, vt, *w.surrogate, quick_config());
  ASSERT_GE(result.loss_history.size(), 2u);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(SparseTransfer, AdmmAndTopkBothProduceValidMasks) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[4];
  const auto& vt = w.dataset.train[18];
  for (const bool use_admm : {true, false}) {
    auto cfg = quick_config();
    cfg.use_admm = use_admm;
    const auto result = sparse_transfer(v, vt, *w.surrogate, cfg);
    EXPECT_EQ(result.perturbation.selected_pixels(), cfg.k)
        << "use_admm=" << use_admm;
    EXPECT_EQ(result.perturbation.selected_frames(), cfg.n);
  }
}

TEST(SparseTransfer, L2NormConstraintBoundsTotalEnergy) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[5];
  const auto& vt = w.dataset.train[22];
  auto cfg = quick_config();
  cfg.norm = NormKind::kL2;
  const auto result = sparse_transfer(v, vt, *w.surrogate, cfg);
  const double budget =
      static_cast<double>(cfg.tau) * std::sqrt(static_cast<double>(cfg.k));
  EXPECT_LE(result.perturbation.magnitude().norm_l2(), budget * 1.001);
}

TEST(SparseTransfer, ResumesFromPreviousMasks) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[6];
  const auto& vt = w.dataset.train[25];
  const auto cfg = quick_config();
  const auto first = sparse_transfer(v, vt, *w.surrogate, cfg);

  Perturbation init(v.geometry());
  init.pixel_mask() = first.perturbation.pixel_mask();
  init.frame_mask() = first.perturbation.frame_mask();
  const auto second = sparse_transfer(v, vt, *w.surrogate, cfg, init);
  EXPECT_EQ(second.perturbation.selected_pixels(), cfg.k);
  EXPECT_EQ(second.perturbation.selected_frames(), cfg.n);
}

TEST(SparseTransfer, RejectsInvalidBudgets) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[0];
  auto cfg = quick_config();
  cfg.n = 100;  // more frames than the video has
  EXPECT_THROW(sparse_transfer(v, v, *w.surrogate, cfg), std::logic_error);
  cfg = quick_config();
  cfg.k = 0;
  EXPECT_THROW(sparse_transfer(v, v, *w.surrogate, cfg), std::logic_error);
}

TEST(SparseTransfer, KeyFrameSelectionPrefersInformativeFrames) {
  // The frame search should not simply pick the first n frames: across
  // several pairs, the union of selected frames must cover more than n
  // distinct indices (i.e., selection adapts to content).
  auto& w = TinyWorld::mutable_instance();
  const auto cfg = quick_config();
  std::set<std::int64_t> seen;
  for (const int i : {0, 7, 13, 19, 26}) {
    const auto& v = w.dataset.train[static_cast<std::size_t>(i)];
    const auto& vt = w.dataset.train[static_cast<std::size_t>((i + 9) % 30)];
    const auto result = sparse_transfer(v, vt, *w.surrogate, cfg);
    for (const auto f : result.perturbation.selected_frame_indices()) {
      seen.insert(f);
    }
  }
  EXPECT_GT(seen.size(), static_cast<std::size_t>(cfg.n));
}

}  // namespace
}  // namespace duo::attack
