#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "attack/surrogate.hpp"
#include "fixtures.hpp"

namespace duo::attack {
namespace {

using duo::testing::TinyWorld;

TEST(VideoStore, AddGetContains) {
  auto& w = TinyWorld::mutable_instance();
  VideoStore store(w.dataset.train);
  EXPECT_EQ(store.size(), w.dataset.train.size());
  const auto& v = w.dataset.train[3];
  EXPECT_TRUE(store.contains(v.id()));
  EXPECT_EQ(store.get(v.id()).label(), v.label());
  EXPECT_FALSE(store.contains(999999));
  EXPECT_THROW(store.get(999999), std::logic_error);
}

TEST(Harvest, CollectsVideosAndTriplets) {
  auto& w = TinyWorld::mutable_instance();
  retrieval::BlackBoxHandle handle(*w.victim);
  SurrogateHarvestConfig cfg;
  cfg.m = 8;
  cfg.rounds = 2;
  cfg.target_video_count = 15;
  const auto ds = harvest_surrogate_dataset(
      handle, *w.store, {w.dataset.train[0].id()}, cfg);

  EXPECT_GE(ds.video_ids.size(), 8u);
  EXPECT_FALSE(ds.triplets.empty());
  EXPECT_GT(ds.queries_spent, 0);
  EXPECT_EQ(ds.queries_spent, handle.query_count());
}

TEST(Harvest, TripletsRespectRankOrder) {
  // For every harvested triplet, `closer` must genuinely rank above
  // `farther` in the victim's list for that anchor.
  auto& w = TinyWorld::mutable_instance();
  retrieval::BlackBoxHandle handle(*w.victim);
  SurrogateHarvestConfig cfg;
  cfg.m = 6;
  cfg.rounds = 1;
  const auto ds = harvest_surrogate_dataset(
      handle, *w.store, {w.dataset.train[2].id()}, cfg);
  ASSERT_FALSE(ds.triplets.empty());

  for (const auto& t : ds.triplets) {
    const auto list = w.victim->retrieve(w.store->get(t.anchor), cfg.m);
    std::int64_t pos_closer = -1, pos_farther = -1;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] == t.closer) pos_closer = static_cast<std::int64_t>(i);
      if (list[i] == t.farther) pos_farther = static_cast<std::int64_t>(i);
    }
    ASSERT_GE(pos_closer, 0);
    ASSERT_GE(pos_farther, 0);
    EXPECT_LT(pos_closer, pos_farther);
  }
}

TEST(Harvest, AllHarvestedIdsAreFetchable) {
  auto& w = TinyWorld::mutable_instance();
  retrieval::BlackBoxHandle handle(*w.victim);
  SurrogateHarvestConfig cfg;
  cfg.rounds = 2;
  const auto ds = harvest_surrogate_dataset(
      handle, *w.store, {w.dataset.train[4].id()}, cfg);
  for (const auto id : ds.video_ids) {
    EXPECT_TRUE(w.store->contains(id));
  }
  // Ids are unique and sorted.
  std::unordered_set<std::int64_t> unique(ds.video_ids.begin(),
                                          ds.video_ids.end());
  EXPECT_EQ(unique.size(), ds.video_ids.size());
}

TEST(Harvest, ExhaustedGalleryStopsSpendingQueries) {
  // Regression test for the query-budget leak: when the gallery is smaller
  // than the frontier fan-out, every video is used as an anchor within a few
  // rounds. Extra rounds must then spend zero additional victim queries and
  // harvest zero additional triplets — re-querying an already-harvested
  // anchor only buys a duplicate list.
  auto& w = TinyWorld::mutable_instance();
  SurrogateHarvestConfig cfg;
  cfg.m = w.dataset.train.size();  // full-gallery retrieval lists
  cfg.expand_per_query = 8;        // fan-out larger than what remains
  cfg.target_video_count = 10 * w.dataset.train.size();  // never met
  cfg.target_triplets = 0;         // disable the triplet stopping rule

  auto run = [&](int rounds) {
    retrieval::BlackBoxHandle handle(*w.victim);
    auto c = cfg;
    c.rounds = rounds;
    return harvest_surrogate_dataset(handle, *w.store,
                                     {w.dataset.train[0].id()}, c);
  };
  const auto base = run(4);
  const auto extra = run(12);

  // Every gallery video is queried at most once, ever.
  EXPECT_LE(base.queries_spent,
            static_cast<std::int64_t>(w.dataset.train.size()));
  EXPECT_EQ(base.queries_spent, extra.queries_spent);

  auto canon = [](const SurrogateDataset& d) {
    std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> v;
    v.reserve(d.triplets.size());
    for (const auto& t : d.triplets) v.emplace_back(t.anchor, t.closer, t.farther);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(base), canon(extra));
}

TEST(Harvest, EmptySeedsThrow) {
  auto& w = TinyWorld::mutable_instance();
  retrieval::BlackBoxHandle handle(*w.victim);
  EXPECT_THROW(
      harvest_surrogate_dataset(handle, *w.store, {}, SurrogateHarvestConfig{}),
      std::logic_error);
}

TEST(TrainSurrogate, LossDecreasesAcrossEpochs) {
  auto& w = TinyWorld::mutable_instance();
  retrieval::BlackBoxHandle handle(*w.victim);
  SurrogateHarvestConfig hcfg;
  hcfg.rounds = 2;
  hcfg.target_video_count = 18;
  const auto ds = harvest_surrogate_dataset(
      handle, *w.store, {w.dataset.train[1].id()}, hcfg);

  Rng rng(404);
  auto fresh = models::make_extractor(models::ModelKind::kResNet18,
                                      w.spec.geometry, 16, rng);
  SurrogateTrainConfig scfg;
  scfg.epochs = 4;
  scfg.triplets_per_epoch = 30;
  const auto stats = train_surrogate(*fresh, ds, *w.store, scfg);
  ASSERT_EQ(stats.epoch_losses.size(), 4u);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
}

TEST(TrainSurrogate, TrainedSurrogateAgreesWithVictimRankings) {
  // The fixture's surrogate was trained from victim rankings: its feature
  // distances should order victim-retrieved videos better than chance. For
  // anchors in the gallery, check that the victim's top result (after the
  // anchor itself) is closer in surrogate space than the victim's last
  // result, for a majority of anchors.
  auto& w = TinyWorld::mutable_instance();
  int agree = 0, total = 0;
  for (const int i : {0, 5, 11, 17, 23, 29}) {
    const auto& anchor = w.dataset.train[static_cast<std::size_t>(i)];
    const auto list = w.victim->retrieve(anchor, 8);
    ASSERT_GE(list.size(), 3u);
    // Skip position 0 (the anchor itself).
    const auto& near_v = w.store->get(list[1]);
    const auto& far_v = w.store->get(list.back());
    const Tensor fa = w.surrogate->extract(anchor);
    const Tensor fn = w.surrogate->extract(near_v);
    const Tensor ff = w.surrogate->extract(far_v);
    if ((fa - fn).norm_l2() < (fa - ff).norm_l2()) ++agree;
    ++total;
  }
  EXPECT_GE(agree * 2, total);  // at least half
}

TEST(TrainSurrogate, NoTripletsThrows) {
  auto& w = TinyWorld::mutable_instance();
  SurrogateDataset empty;
  Rng rng(1);
  auto model = models::make_extractor(models::ModelKind::kC3D,
                                      w.spec.geometry, 16, rng);
  EXPECT_THROW(train_surrogate(*model, empty, *w.store, SurrogateTrainConfig{}),
               std::logic_error);
}

}  // namespace
}  // namespace duo::attack
