#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hpp"

namespace duo {
namespace {

TEST(TableWriter, PrintsHeaderAndRows) {
  TableWriter t("Demo");
  t.set_header({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), 2.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t("Bad");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::logic_error);
}

TEST(TableWriter, PrecisionControlsDoubles) {
  TableWriter t("P");
  t.set_header({"x"});
  t.set_precision(4);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1416"), std::string::npos);
}

TEST(TableWriter, IntegerCells) {
  TableWriter t("I");
  t.set_header({"count"});
  t.add_row({static_cast<long long>(602112)});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("602112"), std::string::npos);
}

TEST(TableWriter, WritesCsv) {
  TableWriter t("CSV");
  t.set_header({"a", "b"});
  t.add_row({std::string("x,y"), 1.0});
  const std::string path = "/tmp/duo_test_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",1.00");
  std::remove(path.c_str());
}

TEST(TableWriter, RowCount) {
  TableWriter t("N");
  t.set_header({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({1.0});
  t.add_row({2.0});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace duo
