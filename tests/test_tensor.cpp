#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.hpp"

namespace duo {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t[i], 2.5f);
}

TEST(Tensor, AdoptDataValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), std::logic_error);
  Tensor ok({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(ok.at(1, 0), 3.0f);
}

TEST(Tensor, MultiIndexAccessRowMajor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, IndexOutOfRangeThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), std::logic_error);
  EXPECT_THROW((void)t[4], std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4}), std::logic_error);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  const Tensor sum = a + b;
  const Tensor diff = b - a;
  const Tensor prod = a * b;
  EXPECT_FLOAT_EQ(sum[2], 9.0f);
  EXPECT_FLOAT_EQ(diff[0], 3.0f);
  EXPECT_FLOAT_EQ(prod[1], 10.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, std::logic_error);
}

TEST(Tensor, ScalarOps) {
  Tensor a({2}, std::vector<float>{1, -2});
  const Tensor scaled = a * 3.0f;
  EXPECT_FLOAT_EQ(scaled[1], -6.0f);
  const Tensor negated = -a;
  EXPECT_FLOAT_EQ(negated[0], -1.0f);
  EXPECT_FLOAT_EQ((2.0f * a)[0], 2.0f);
}

TEST(Tensor, AxpyFusedUpdate) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b({2}, std::vector<float>{10, 20});
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 12.0f);
}

TEST(Tensor, ClampBounds) {
  Tensor a({4}, std::vector<float>{-5, 0.5f, 2, 100});
  a.clamp_(0.0f, 1.0f);
  EXPECT_FLOAT_EQ(a[0], 0.0f);
  EXPECT_FLOAT_EQ(a[1], 0.5f);
  EXPECT_FLOAT_EQ(a[3], 1.0f);
}

TEST(Tensor, SignFunction) {
  Tensor a({3}, std::vector<float>{-2, 0, 7});
  const Tensor s = a.sign();
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[1], 0.0f);
  EXPECT_FLOAT_EQ(s[2], 1.0f);
}

TEST(Tensor, Reductions) {
  Tensor a({4}, std::vector<float>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_FLOAT_EQ(a.max(), 4.0f);
  EXPECT_FLOAT_EQ(a.min(), 1.0f);
}

TEST(Tensor, DotProduct) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Tensor, Norms) {
  Tensor a({4}, std::vector<float>{0, -3, 4, 0});
  EXPECT_EQ(a.norm_l0(), 2);
  EXPECT_DOUBLE_EQ(a.norm_l1(), 7.0);
  EXPECT_DOUBLE_EQ(a.norm_l2(), 5.0);
  EXPECT_FLOAT_EQ(a.norm_linf(), 4.0f);
}

TEST(Tensor, NormL0WithEpsilon) {
  Tensor a({3}, std::vector<float>{1e-8f, 0.1f, -0.2f});
  EXPECT_EQ(a.norm_l0(1e-6f), 2);
}

TEST(Tensor, MatmulKnownResult) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = a.matmul(b);
  EXPECT_EQ(c.shape(), (Tensor::Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Tensor, MatmulDimensionMismatchThrows) {
  Tensor a({2, 3}), b({2, 2});
  EXPECT_THROW(a.matmul(b), std::logic_error);
}

TEST(Tensor, Transpose) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor t = a.transposed();
  EXPECT_EQ(t.shape(), (Tensor::Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
}

TEST(Tensor, AllClose) {
  Tensor a({2}, std::vector<float>{1.0f, 2.0f});
  Tensor b({2}, std::vector<float>{1.0f + 1e-6f, 2.0f});
  EXPECT_TRUE(a.allclose(b));
  Tensor c({2}, std::vector<float>{1.1f, 2.0f});
  EXPECT_FALSE(a.allclose(c));
  EXPECT_FALSE(a.allclose(Tensor({3})));
}

TEST(Tensor, RandomFactoriesRespectBounds) {
  Rng rng(3);
  const Tensor u = Tensor::uniform({100}, -2.0f, 3.0f, rng);
  EXPECT_GE(u.min(), -2.0f);
  EXPECT_LT(u.max(), 3.0f);
  const Tensor n = Tensor::normal({1000}, 1.0f, 0.5f, rng);
  EXPECT_NEAR(n.mean(), 1.0, 0.1);
}

TEST(Tensor, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({-1, 2}), std::logic_error);
}

}  // namespace
}  // namespace duo
