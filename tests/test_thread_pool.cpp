#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace duo {
namespace {

TEST(ThreadPool, RunsAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  std::vector<long long> partial(256, 0);
  pool.parallel_for(256, [&](std::size_t i) {
    partial[i] = static_cast<long long>(i) * i;
  });
  long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  long long expected = 0;
  for (long long i = 0; i < 256; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, SizeReflectsRequestedThreads) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

}  // namespace
}  // namespace duo
