#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace duo {
namespace {

// Runs `fn` on a helper thread and aborts the whole process if it does not
// finish within `deadline`. A deadlocked pool cannot be torn down, so on
// timeout the only way to surface the failure to ctest is a hard exit.
void run_with_deadline(const std::function<void()>& fn,
                       std::chrono::seconds deadline) {
  std::packaged_task<void()> task(fn);
  auto future = task.get_future();
  std::thread runner(std::move(task));
  if (future.wait_for(deadline) == std::future_status::timeout) {
    std::fprintf(stderr, "FATAL: parallel_for deadlocked (exceeded %llds)\n",
                 static_cast<long long>(deadline.count()));
    std::fflush(stderr);
    std::_Exit(2);
  }
  runner.join();
  future.get();
}

TEST(ThreadPool, RunsAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  std::vector<long long> partial(256, 0);
  pool.parallel_for(256, [&](std::size_t i) {
    partial[i] = static_cast<long long>(i) * i;
  });
  long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  long long expected = 0;
  for (long long i = 0; i < 256; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, SizeReflectsRequestedThreads) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

// Regression test for the re-entrancy deadlock: an outer parallel_for at
// full pool width whose items issue further parallel_for calls on the same
// pool used to park every worker on done_cv with their shards starved
// behind them in the queue.
TEST(ThreadPool, NestedParallelForTwoLevelsDeepDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> innermost{0};
  run_with_deadline(
      [&] {
        pool.parallel_for(4, [&](std::size_t) {
          pool.parallel_for(4, [&](std::size_t) {
            pool.parallel_for(4, [&](std::size_t) { innermost.fetch_add(1); });
          });
        });
      },
      std::chrono::seconds(10));
  EXPECT_EQ(innermost.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnWorkers) {
  ThreadPool pool(3);
  std::atomic<int> nested_items{0};
  std::atomic<int> escaped{0};  // nested items that hopped to another thread
  std::atomic<int> started{0};
  run_with_deadline(
      [&] {
        pool.parallel_for(3, [&](std::size_t) {
          // Hold every outer item until all three run concurrently: with a
          // single caller thread, at least two must be on pool workers.
          started.fetch_add(1);
          while (started.load() < 3) std::this_thread::yield();
          const bool on_worker = pool.in_worker_context();
          const std::thread::id outer_thread = std::this_thread::get_id();
          pool.parallel_for(5, [&](std::size_t) {
            if (on_worker) {
              nested_items.fetch_add(1);
              if (std::this_thread::get_id() != outer_thread) {
                escaped.fetch_add(1);
              }
            }
          });
        });
      },
      std::chrono::seconds(10));
  // Worker-context nesting must degrade to inline execution: every nested
  // item of a worker-executed outer item stays on that worker's thread.
  EXPECT_GT(nested_items.load(), 0);
  EXPECT_EQ(escaped.load(), 0);
}

TEST(ThreadPool, CallerRunsEvenWhenAllWorkersAreBusy) {
  ThreadPool pool(2);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  // Park every worker on a gate so the queue cannot make progress; the
  // caller must finish the loop entirely on its own.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool.enqueue([&] {
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return release; });
    });
  }
  std::atomic<int> count{0};
  run_with_deadline(
      [&] { pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); }); },
      std::chrono::seconds(10));
  EXPECT_EQ(count.load(), 64);
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
}

TEST(ThreadPool, NestedPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t) {
                                   pool.parallel_for(4, [&](std::size_t j) {
                                     if (j == 2) {
                                       throw std::runtime_error("inner");
                                     }
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ShutdownDegradesToInlineExecution) {
  ThreadPool pool(3);
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());

  // enqueue on a stopped pool runs the task synchronously and reports it
  // was not queued (the static-destruction-order safety net).
  bool ran = false;
  EXPECT_FALSE(pool.enqueue([&] { ran = true; }));
  EXPECT_TRUE(ran);

  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);

  pool.shutdown();  // idempotent
  EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, ThreadsFromEnvParsing) {
  EXPECT_EQ(ThreadPool::threads_from_env(nullptr), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env(""), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("0"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("1"), 1u);
  EXPECT_EQ(ThreadPool::threads_from_env("8"), 8u);
  EXPECT_EQ(ThreadPool::threads_from_env("-3"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("junk"), 0u);
  EXPECT_EQ(ThreadPool::threads_from_env("4x"), 0u);
}

TEST(ThreadPool, ComputePoolOverride) {
  EXPECT_EQ(&compute_pool(), &ThreadPool::shared());
  {
    ThreadPool pool(2);
    set_compute_pool(&pool);
    EXPECT_EQ(&compute_pool(), &pool);
    set_compute_pool(nullptr);
  }
  EXPECT_EQ(&compute_pool(), &ThreadPool::shared());
}

}  // namespace
}  // namespace duo
