// Untargeted attack mode (§I extension): v_adv's retrieval list should
// diverge from R(v) — no target video involved.

#include <gtest/gtest.h>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "fixtures.hpp"
#include "metrics/metrics.hpp"

namespace duo::attack {
namespace {

using duo::testing::TinyWorld;

DuoConfig untargeted_config() {
  DuoConfig cfg;
  cfg.goal = AttackGoal::kUntargeted;
  cfg.transfer.k = 200;
  cfg.transfer.n = 3;
  cfg.transfer.outer_iterations = 2;
  cfg.transfer.theta_steps = 5;
  cfg.query.iter_numQ = 50;
  cfg.iter_numH = 1;
  cfg.m = 8;
  return cfg;
}

TEST(UntargetedDuo, NameMarksTheVariant) {
  auto& w = TinyWorld::mutable_instance();
  DuoAttack attack(*w.surrogate, untargeted_config());
  EXPECT_EQ(attack.name(), "DUO-U-C3D");
}

TEST(UntargetedDuo, PushesListAwayFromOriginal) {
  auto& w = TinyWorld::mutable_instance();
  auto cfg = untargeted_config();
  cfg.transfer.k = 400;
  cfg.transfer.outer_iterations = 3;
  cfg.query.iter_numQ = 120;
  cfg.iter_numH = 2;
  DuoAttack attack(*w.surrogate, cfg);

  // Gallery self-retrieval is extremely stable (the original sits at
  // distance 0 of itself), so demand measurable drift on at least one of
  // the attacked videos rather than on every one.
  double min_similarity = 1.0;
  for (const int i : {0, 8, 16}) {
    const auto& v = w.dataset.train[static_cast<std::size_t>(i)];
    const auto& decoy = w.dataset.train[static_cast<std::size_t>(i + 6)];
    retrieval::BlackBoxHandle handle(*w.victim);
    const auto outcome = attack.run(v, decoy, handle);

    const auto list_v = w.victim->retrieve(v, 8);
    const auto list_adv = w.victim->retrieve(outcome.adversarial, 8);
    min_similarity =
        std::min(min_similarity, metrics::ndcg_similarity(list_adv, list_v));
  }
  EXPECT_LT(min_similarity, 1.0);
}

TEST(UntargetedDuo, StillRespectsSparsityBudgets) {
  auto& w = TinyWorld::mutable_instance();
  const auto cfg = untargeted_config();
  DuoAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome =
      attack.run(w.dataset.train[1], w.dataset.train[10], handle);
  EXPECT_LE(metrics::sparsity(outcome.perturbation),
            cfg.transfer.k * cfg.iter_numH);
  EXPECT_LE(metrics::perturbed_frames(
                outcome.perturbation,
                w.spec.geometry.elements_per_frame()),
            cfg.transfer.n * cfg.iter_numH);
}

TEST(UntargetedObjective, IgnoresTargetList) {
  auto& w = TinyWorld::mutable_instance();
  retrieval::BlackBoxHandle handle(*w.victim);
  ObjectiveContext ctx = make_objective_context(
      handle, w.dataset.train[0], w.dataset.train[9], 8);
  ctx.untargeted = true;

  // T depends only on similarity to R(v): swapping list_vt changes nothing.
  const auto list = w.victim->retrieve(w.dataset.train[2], 8);
  const double t1 = t_loss_from_list(list, ctx);
  ctx.list_vt.clear();
  const double t2 = t_loss_from_list(list, ctx);
  EXPECT_DOUBLE_EQ(t1, t2);

  // For the original video itself, untargeted T is maximal (H = 1 + η).
  const double t_self = t_loss_from_list(ctx.list_v, ctx);
  EXPECT_NEAR(t_self, 1.0 + ctx.eta, 1e-9);
}

TEST(UntargetedTransfer, MovesAwayFromOwnFeature) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[4];
  SparseTransferConfig cfg;
  cfg.goal = AttackGoal::kUntargeted;
  cfg.k = 200;
  cfg.n = 3;
  cfg.outer_iterations = 2;
  cfg.theta_steps = 6;
  // v_t is ignored by the untargeted goal; pass v itself.
  const auto result = sparse_transfer(v, v, *w.surrogate, cfg);
  const video::Video adv = result.perturbation.apply_to(v);

  const Tensor f_orig = w.surrogate->extract(v);
  const Tensor f_adv = w.surrogate->extract(adv);
  EXPECT_GT((f_adv - f_orig).norm_l2(), 0.0);
}

}  // namespace
}  // namespace duo::attack
