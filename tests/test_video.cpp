#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "video/codec.hpp"
#include "video/frame_sampler.hpp"
#include "video/synthetic.hpp"
#include "video/video.hpp"

namespace duo::video {
namespace {

TEST(VideoGeometry, ElementCounts) {
  VideoGeometry g{16, 24, 24, 3};
  EXPECT_EQ(g.pixels_per_frame(), 576);
  EXPECT_EQ(g.elements_per_frame(), 1728);
  EXPECT_EQ(g.total_elements(), 27648);
  EXPECT_EQ(g.tensor_shape(), (Tensor::Shape{16, 24, 24, 3}));
}

TEST(VideoGeometry, PaperScaleMatchesUcf101) {
  const VideoGeometry g = VideoGeometry::paper_scale();
  // Table II dense attacks perturb ≈ 602K elements: 16·112·112·3.
  EXPECT_EQ(g.total_elements(), 602112);
}

TEST(Video, ModelInputRoundTrip) {
  VideoGeometry g{2, 3, 4, 3};
  Video v(g, 1, 42);
  Rng rng(1);
  for (auto& x : v.data().flat()) x = std::round(rng.uniform_f(0.0f, 255.0f));

  const Tensor model = v.to_model_input();
  EXPECT_EQ(model.shape(), (Tensor::Shape{3, 2, 4, 3}));
  EXPECT_LE(model.max(), 1.0f);
  EXPECT_GE(model.min(), 0.0f);

  const Tensor back = Video::from_model_space(model, g, true);
  EXPECT_TRUE(back.allclose(v.data(), 1e-3f));
}

TEST(Video, ModelInputLayoutIsChannelMajor) {
  VideoGeometry g{1, 2, 1, 2};
  Video v(g, 0, 0);
  v.pixel(0, 0, 0, 0) = 255.0f;  // frame 0, y 0, x 0, channel 0
  v.pixel(0, 0, 1, 1) = 127.5f;  // x 1, channel 1
  const Tensor m = v.to_model_input();
  EXPECT_FLOAT_EQ(m.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0, 0, 1), 0.5f);
}

TEST(Video, ClampValid) {
  VideoGeometry g{1, 2, 2, 1};
  Video v(g, 0, 0);
  v.data()[0] = -10.0f;
  v.data()[1] = 300.0f;
  v.clamp_valid();
  EXPECT_FLOAT_EQ(v.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(v.data()[1], 255.0f);
}

TEST(FrameSampler, UniformIndicesSpreadEvenly) {
  const auto idx = uniform_sample_indices(32, 16);
  ASSERT_EQ(idx.size(), 16u);
  EXPECT_EQ(idx.front(), 1);
  EXPECT_EQ(idx.back(), 31);
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_GT(idx[i], idx[i - 1]);
}

TEST(FrameSampler, IdentityWhenCountsMatch) {
  const auto idx = uniform_sample_indices(16, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(idx[i], static_cast<std::int64_t>(i));
  }
}

TEST(FrameSampler, SamplesVideoTo16Frames) {
  VideoGeometry g{40, 4, 4, 3};
  Video v(g, 3, 9);
  for (std::int64_t f = 0; f < g.frames; ++f) {
    v.pixel(f, 0, 0, 0) = static_cast<float>(f);
  }
  const Video sampled = uniform_sample(v, 16);
  EXPECT_EQ(sampled.geometry().frames, 16);
  EXPECT_EQ(sampled.label(), 3);
  EXPECT_EQ(sampled.id(), 9);
  // Frame markers must be increasing samples of the original indices.
  float prev = -1.0f;
  for (std::int64_t f = 0; f < 16; ++f) {
    const float marker = sampled.pixel(f, 0, 0, 0);
    EXPECT_GT(marker, prev);
    prev = marker;
  }
}

TEST(Synthetic, DeterministicGeneration) {
  const auto spec = DatasetSpec::hmdb51_like(99);
  SyntheticGenerator gen1(spec), gen2(spec);
  const Dataset a = gen1.generate();
  const Dataset b = gen2.generate();
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_TRUE(a.train[i].data().allclose(b.train[i].data()));
  }
}

TEST(Synthetic, SpecSizes) {
  const auto ucf = DatasetSpec::ucf101_like();
  EXPECT_EQ(static_cast<int>(SyntheticGenerator(ucf).generate().train.size()),
            ucf.train_size());
  EXPECT_EQ(static_cast<int>(SyntheticGenerator(ucf).generate().test.size()),
            ucf.test_size());
}

TEST(Synthetic, UniqueIdsAndValidLabels) {
  const auto spec = DatasetSpec::hmdb51_like();
  const Dataset ds = SyntheticGenerator(spec).generate();
  std::unordered_set<std::int64_t> ids;
  for (const auto& v : ds.train) {
    EXPECT_TRUE(ids.insert(v.id()).second);
    EXPECT_GE(v.label(), 0);
    EXPECT_LT(v.label(), spec.num_classes);
  }
  for (const auto& v : ds.test) {
    EXPECT_TRUE(ids.insert(v.id()).second);
  }
}

TEST(Synthetic, PixelsAreIntegralAndInRange) {
  const Dataset ds = SyntheticGenerator(DatasetSpec::hmdb51_like()).generate();
  const auto& v = ds.train.front();
  for (std::int64_t i = 0; i < v.data().size(); ++i) {
    const float x = v.data()[i];
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 255.0f);
    EXPECT_FLOAT_EQ(x, std::round(x));
  }
}

TEST(Synthetic, SameClassVideosShareChannelContrastSignature) {
  // Raw pixel distance is dominated by the class-independent background (by
  // design — that is what gives different-class queries overlapping
  // retrieval lists). The class signal lives in content statistics; the
  // per-channel contrast (std-dev) vector reflects the class color mix and
  // must cluster by class.
  auto spec = DatasetSpec::hmdb51_like(5);
  spec.num_classes = 4;
  spec.train_per_class = 6;
  spec.test_per_class = 0;
  const Dataset ds = SyntheticGenerator(spec).generate();

  auto signature = [](const Video& v) {
    const auto& g = v.geometry();
    std::vector<double> mean(static_cast<std::size_t>(g.channels), 0.0);
    std::vector<double> var(static_cast<std::size_t>(g.channels), 0.0);
    const std::int64_t per_channel = v.data().size() / g.channels;
    for (std::int64_t i = 0; i < v.data().size(); ++i) {
      mean[static_cast<std::size_t>(i % g.channels)] += v.data()[i];
    }
    for (auto& m : mean) m /= static_cast<double>(per_channel);
    for (std::int64_t i = 0; i < v.data().size(); ++i) {
      const double d =
          v.data()[i] - mean[static_cast<std::size_t>(i % g.channels)];
      var[static_cast<std::size_t>(i % g.channels)] += d * d;
    }
    for (auto& x : var) x = std::sqrt(x / static_cast<double>(per_channel));
    return var;
  };

  auto dist = [&](const Video& a, const Video& b) {
    const auto sa = signature(a), sb = signature(b);
    double acc = 0.0;
    for (std::size_t c = 0; c < sa.size(); ++c) {
      acc += (sa[c] - sb[c]) * (sa[c] - sb[c]);
    }
    return std::sqrt(acc);
  };

  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i < ds.train.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.train.size(); ++j) {
      const double d = dist(ds.train[i], ds.train[j]);
      if (ds.train[i].label() == ds.train[j].label()) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(Synthetic, EventWindowFramesDifferFromBaseline) {
  // Key-frame phenomenon: frames inside the class event window carry the
  // flash pattern, so they differ more across (event vs non-event) than
  // within non-event frames of the same video.
  auto spec = DatasetSpec::hmdb51_like(6);
  SyntheticGenerator gen(spec);
  const auto& pattern = gen.pattern(0);
  const Video v = gen.make_video(0, 0, 1234);
  const std::int64_t fe = v.geometry().elements_per_frame();

  const std::int64_t event_frame = pattern.event_start;
  std::int64_t nonevent_frame = -1;
  for (std::int64_t f = 0; f < v.geometry().frames; ++f) {
    if (f < pattern.event_start || f >= pattern.event_start + pattern.event_length) {
      nonevent_frame = f;
      break;
    }
  }
  ASSERT_GE(nonevent_frame, 0);

  double event_energy = 0.0, base_energy = 0.0;
  for (std::int64_t e = 0; e < fe; ++e) {
    const float ev = v.data()[event_frame * fe + e] - 127.5f;
    const float ba = v.data()[nonevent_frame * fe + e] - 127.5f;
    event_energy += ev * ev;
    base_energy += ba * ba;
  }
  // The flash adds signal energy on top of the base pattern.
  EXPECT_GT(event_energy, base_energy * 1.02);
}

TEST(Codec, SaveLoadRoundTrip) {
  const Dataset ds = SyntheticGenerator(DatasetSpec::hmdb51_like(8)).generate();
  const Video& v = ds.train.front();
  const std::string path = "/tmp/duo_test_video.duov";
  ASSERT_TRUE(save_video(v, path));
  const auto loaded = load_video(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->label(), v.label());
  EXPECT_EQ(loaded->id(), v.id());
  EXPECT_TRUE(loaded->data().allclose(v.data(), 0.51f));
  std::remove(path.c_str());
}

TEST(Codec, RejectsGarbageFile) {
  const std::string path = "/tmp/duo_test_garbage.duov";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a video";
  }
  EXPECT_FALSE(load_video(path).has_value());
  std::remove(path.c_str());
}

TEST(Codec, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_video("/tmp/does_not_exist_duo.duov").has_value());
}

}  // namespace
}  // namespace duo::video
